"""Incomplete fast-path checks that avoid bit-blasting.

KLEE answers most queries without reaching STP, via cheap syntactic and
value-based reasoning.  This module plays that role with three layers:

1. **Equality propagation** — bindings of the form ``var == const`` are
   substituted into the remaining constraints; the smart constructors fold
   the result, often to ``true``/``false``.
2. **Candidate probing** — a few deterministic candidate assignments (all
   zeros, bound values, printable-byte fill, ...) are *evaluated*; any hit
   proves SAT with a model in hand.
3. **Interval refutation** — sound unsigned intervals are computed for each
   side of a comparison; disjoint intervals refute satisfiable-looking
   constraints without search.

All answers are sound; ``unknown`` falls through to the bit-blaster.
"""

from __future__ import annotations

from ..expr import nodes as N
from ..expr import ops
from ..expr.evaluate import EvalError, evaluate
from ..expr.nodes import Expr
from ..expr.sorts import to_unsigned
from ..expr.subst import substitute

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

FULL = None  # marker: full-range interval


class IntervalEnv:
    """Unsigned intervals [lo, hi] for variables, refined from constraints."""

    def __init__(self) -> None:
        self.ranges: dict[str, tuple[int, int]] = {}

    def get(self, name: str, width: int) -> tuple[int, int]:
        return self.ranges.get(name, (0, (1 << width) - 1))

    def refine(self, name: str, width: int, lo: int, hi: int) -> bool:
        """Intersect the variable's interval; returns False on emptiness."""
        cur_lo, cur_hi = self.get(name, width)
        new_lo, new_hi = max(cur_lo, lo), min(cur_hi, hi)
        if new_lo > new_hi:
            return False
        self.ranges[name] = (new_lo, new_hi)
        return True


def _interval(e: Expr, env: IntervalEnv) -> tuple[int, int] | None:
    """Sound unsigned interval of a bitvector expression, or None (= full).

    Only returns a non-full interval when no wraparound is possible, so the
    result is always a true over-approximation.
    """
    kind = e.kind
    if kind == N.CONST:
        return (e.value, e.value)
    if kind == N.VAR:
        return env.get(e.name, e.width)
    max_val = (1 << e.width) - 1
    if kind == N.ADD:
        a = _interval(e.children[0], env)
        b = _interval(e.children[1], env)
        if a is None or b is None:
            return None
        lo, hi = a[0] + b[0], a[1] + b[1]
        return (lo, hi) if hi <= max_val else None
    if kind == N.SUB:
        a = _interval(e.children[0], env)
        b = _interval(e.children[1], env)
        if a is None or b is None:
            return None
        lo, hi = a[0] - b[1], a[1] - b[0]
        return (lo, hi) if lo >= 0 else None
    if kind == N.MUL:
        a = _interval(e.children[0], env)
        b = _interval(e.children[1], env)
        if a is None or b is None:
            return None
        hi = a[1] * b[1]
        return (a[0] * b[0], hi) if hi <= max_val else None
    if kind == N.ZEXT:
        return _interval(e.children[0], env)
    if kind == N.ITE:
        t = _interval(e.children[1], env)
        f = _interval(e.children[2], env)
        if t is None or f is None:
            return None
        return (min(t[0], f[0]), max(t[1], f[1]))
    if kind == N.UREM:
        b = _interval(e.children[1], env)
        if b is not None and b[0] >= 1:
            return (0, b[1] - 1)
        return None
    if kind == N.UDIV:
        a = _interval(e.children[0], env)
        b = _interval(e.children[1], env)
        if a is not None and b is not None and b[0] >= 1:
            return (a[0] // b[1], a[1] // b[0])
        return None
    if kind == N.EXTRACT:
        hi_bit, lo_bit = e.params
        if lo_bit == 0:
            inner = _interval(e.children[0], env)
            if inner is not None and inner[1] <= (1 << (hi_bit + 1)) - 1:
                return inner
        return None
    if kind == N.BVAND:
        a = _interval(e.children[0], env)
        b = _interval(e.children[1], env)
        hi_bound = min(a[1] if a else max_val, b[1] if b else max_val)
        return (0, hi_bound)
    if kind in (N.LSHR, N.UREM, N.BVXOR, N.BVOR, N.SHL):
        return None
    return None


def _refute_by_intervals(conjunct: Expr, env: IntervalEnv) -> bool:
    """True if intervals prove this (non-constant) conjunct is unsatisfiable."""
    kind = conjunct.kind
    if kind in (N.EQ, N.ULT, N.ULE) and conjunct.children[0].is_bv():
        a = _interval(conjunct.children[0], env)
        b = _interval(conjunct.children[1], env)
        if a is None or b is None:
            return False
        if kind == N.EQ:
            return a[1] < b[0] or b[1] < a[0]
        if kind == N.ULT:
            return a[0] >= b[1]
        if kind == N.ULE:
            return a[0] > b[1]
    if kind == N.NOT:
        inner = conjunct.children[0]
        if inner.kind == N.EQ and inner.children[0].is_bv():
            a = _interval(inner.children[0], env)
            b = _interval(inner.children[1], env)
            if a is not None and b is not None and a == b and a[0] == a[1]:
                return True  # both sides are the same single value: != impossible
    return False


def _refine_env_from(conjunct: Expr, env: IntervalEnv) -> bool:
    """Refine variable intervals from a top-level conjunct; False = empty."""

    def var_of(e: Expr) -> tuple[str, int] | None:
        if e.kind == N.VAR:
            return e.name, e.width
        if e.kind == N.ZEXT and e.children[0].kind == N.VAR:
            return e.children[0].name, e.children[0].width
        return None

    kind = conjunct.kind
    if kind not in (N.EQ, N.ULT, N.ULE):
        return True
    lhs, rhs = conjunct.children
    if not lhs.is_bv():
        return True
    v = var_of(lhs)
    if v is not None and rhs.is_const():
        name, width = v
        value = to_unsigned(rhs.value, width) if rhs.value < (1 << width) else None
        if kind == N.EQ:
            if rhs.value >= (1 << width):
                return False
            return env.refine(name, width, rhs.value, rhs.value)
        if kind == N.ULT:
            bound = min(rhs.value, 1 << width) - 1
            return env.refine(name, width, 0, bound)
        if kind == N.ULE:
            return env.refine(name, width, 0, min(rhs.value, (1 << width) - 1))
    v = var_of(rhs)
    if v is not None and lhs.is_const():
        name, width = v
        if kind == N.EQ:
            if lhs.value >= (1 << width):
                return False
            return env.refine(name, width, lhs.value, lhs.value)
        if kind == N.ULT:
            return env.refine(name, width, lhs.value + 1, (1 << width) - 1)
        if kind == N.ULE:
            return env.refine(name, width, lhs.value, (1 << width) - 1)
    return True


def _collect_vars(conjuncts: list[Expr]) -> dict[str, Expr]:
    out: dict[str, Expr] = {}
    for c in conjuncts:
        for node in c.iter_nodes():
            if node.kind == N.VAR:
                out.setdefault(node.name, node)
    return out


def _probe(conjuncts: list[Expr], env: IntervalEnv) -> dict[str, int] | None:
    """Try a few deterministic assignments; return a model on success."""
    variables = _collect_vars(conjuncts)

    def assignment(fill) -> dict[str, int]:
        model = {}
        for name, node in variables.items():
            if node.is_bool():
                model[name] = 0
                continue
            lo, hi = env.get(name, node.width)
            model[name] = fill(lo, hi, node.width)
        return model

    candidates = [
        assignment(lambda lo, hi, w: lo),
        assignment(lambda lo, hi, w: hi),
        assignment(lambda lo, hi, w: min(max(ord("a"), lo), hi)),
        assignment(lambda lo, hi, w: min(max(1, lo), hi)),
        assignment(lambda lo, hi, w: (lo + hi) // 2),
    ]
    for model in candidates:
        try:
            if all(evaluate(c, model) for c in conjuncts):
                return model
        except EvalError:
            return None
    return None


def quick_check(conjuncts: list[Expr]) -> tuple[str, dict[str, int] | None]:
    """Fast incomplete decision: ('sat', model) | ('unsat', None) | ('unknown', None)."""
    # Fold trivial cases.
    pending: list[Expr] = []
    for c in conjuncts:
        if c.is_false():
            return UNSAT, None
        if not c.is_true():
            pending.append(c)
    if not pending:
        return SAT, {}

    # Equality propagation to fixpoint (bounded).
    bindings: dict[str, Expr] = {}
    for _ in range(4):
        new_bindings: dict[str, Expr] = {}
        for c in pending:
            if c.kind == N.EQ:
                a, b = c.children
                if a.kind == N.VAR and b.is_const() and a.name not in bindings:
                    new_bindings[a.name] = b
                elif b.kind == N.VAR and a.is_const() and b.name not in bindings:
                    new_bindings[b.name] = a
        if not new_bindings:
            break
        bindings.update(new_bindings)
        folded: list[Expr] = []
        for c in pending:
            c2 = substitute(c, new_bindings)
            if c2.is_false():
                return UNSAT, None
            if not c2.is_true():
                folded.append(c2)
        pending = folded
        if not pending:
            model = {name: e.value for name, e in bindings.items()}
            return SAT, model

    # Interval refinement + refutation.
    env = IntervalEnv()
    for _ in range(2):
        for c in pending:
            if not _refine_env_from(c, env):
                return UNSAT, None
    for c in pending:
        if _refute_by_intervals(c, env):
            return UNSAT, None

    # Candidate probing for a cheap SAT answer.
    model = _probe(pending, env)
    if model is not None:
        for name, e in bindings.items():
            model[name] = e.value
        return SAT, model
    return UNKNOWN, None


__all__ = ["quick_check", "IntervalEnv", "SAT", "UNSAT", "UNKNOWN"]
