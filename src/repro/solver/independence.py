"""Independent-constraint splitting (KLEE's ConstraintIndependence pass).

A query ``{c1, ..., cn}`` is partitioned into groups that share no
variables; each group can be solved separately and the models unioned.
This matters enormously under state merging: a merged path condition drags
along constraints about argv bytes that are irrelevant to the branch being
decided.
"""

from __future__ import annotations

from ..expr.nodes import Expr


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[str, str] = {}

    def find(self, x: str) -> str:
        root = x
        while self.parent.setdefault(root, root) != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def split_independent(constraints: list[Expr]) -> list[list[Expr]]:
    """Partition constraints into variable-disjoint groups.

    Ground constraints (no variables) form their own singleton groups.
    Order within each group follows the input order (stable, so cache keys
    are reproducible).
    """
    uf = _UnionFind()
    for c in constraints:
        names = list(c.variables)
        for other in names[1:]:
            uf.union(names[0], other)
    groups: dict[str, list[Expr]] = {}
    ground: list[list[Expr]] = []
    for c in constraints:
        names = c.variables
        if not names:
            ground.append([c])
            continue
        root = uf.find(next(iter(names)))
        groups.setdefault(root, []).append(c)
    return ground + list(groups.values())


def relevant_constraints(constraints: list[Expr], query: Expr) -> list[Expr]:
    """The subset of ``constraints`` transitively sharing variables with ``query``.

    This is the classic KLEE optimization: to decide ``pc ∧ q``, only the
    part of ``pc`` connected to ``q`` through shared variables matters.
    """
    uf = _UnionFind()
    for c in list(constraints) + [query]:
        names = list(c.variables)
        for other in names[1:]:
            uf.union(names[0], other)
    query_vars = query.variables
    if not query_vars:
        return []
    query_root = uf.find(next(iter(query_vars)))
    out = []
    for c in constraints:
        names = c.variables
        if names and uf.find(next(iter(names))) == query_root:
            out.append(c)
    return out
