"""Constraint-solving substrate: the role STP plays under KLEE.

Layers (top to bottom): :class:`SolverChain` facade, query cache,
independent-constraint splitting, incomplete fast path, bit-blasting to
CNF, and a from-scratch CDCL SAT solver.
"""

from .bitblast import BitBlaster, check_sat
from .cache import QueryCache
from .domains import quick_check
from .independence import relevant_constraints, split_independent
from .presolve import PresolveEnv, PresolveManager, simplify_group
from .portfolio import (
    CheckResult,
    IncrementalChain,
    SolverChain,
    SolverStats,
    SolverTimeout,
    complete_model,
)
from .sat import CDCLSolver, SatResult, luby

__all__ = [
    "BitBlaster",
    "CDCLSolver",
    "CheckResult",
    "IncrementalChain",
    "PresolveEnv",
    "PresolveManager",
    "QueryCache",
    "SatResult",
    "SolverChain",
    "SolverStats",
    "SolverTimeout",
    "check_sat",
    "complete_model",
    "luby",
    "quick_check",
    "relevant_constraints",
    "simplify_group",
    "split_independent",
]
