"""A from-scratch CDCL SAT solver.

This plays the role STP/MiniSat play under KLEE: the bit-blaster
(:mod:`repro.solver.bitblast`) lowers bitvector queries to CNF and this
solver decides them.  Features: two-watched-literal propagation, first-UIP
clause learning, non-chronological backjumping, VSIDS-style activity
decisions with phase saving, and Luby restarts.

The solver is *incremental* in the MiniSat style: :meth:`CDCLSolver.solve`
accepts ``assumptions`` — literals enqueued as pseudo-decisions at levels
``1..k`` before any free decision is made.  An UNSAT answer under
assumptions does not poison the solver (``ok`` stays True); learned
clauses and VSIDS activity persist across calls, and new clauses may be
added between calls.  This is what lets a persistent bit-blaster answer a
stream of related path-condition queries without re-encoding anything.

Literals are non-zero Python ints: ``+v`` is the positive literal of
variable ``v`` (1-based), ``-v`` its negation.

Two kernels implement the identical search:

* :class:`CDCLSolver` — the array kernel.  Watch lists live in one flat
  preallocated list indexed ``lit + cap`` (grown by doubling in
  :meth:`CDCLSolver._grow_to`, so ``new_var`` never touches a dict), each
  watch entry carries a *blocker* literal whose truth lets the propagator
  skip the clause without normalizing it, assignment reads are inlined
  int compares, and decisions come from a lazy VSIDS max-heap instead of
  a linear scan.
* :class:`LegacyCDCLSolver` — the original dict-of-lists implementation,
  kept verbatim as the ablation baseline.

Both kernels make bit-for-bit identical decisions, propagations and
conflicts: the blocker shortcut fires only when the blocker *is* the
clause's current other watch (so it is exactly the legacy "first watch
already true" keep), and the heap pops ``(max activity, min var)`` which
is exactly the legacy linear scan's first-maximum tie-break.  Select the
kernel with :func:`set_kernel` or ``REPRO_SAT_KERNEL=legacy``.
"""

from __future__ import annotations

import heapq
import os

UNASSIGNED = -1


def luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class SatResult:
    SAT = "sat"
    UNSAT = "unsat"


class CDCLSolver:
    """CDCL SAT solver over clauses added with :meth:`add_clause`.

    Typical use::

        s = CDCLSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a])
        assert s.solve() == SatResult.SAT
        assert s.value(b) is True
    """

    #: Initial watch-table capacity (variables); doubled on demand.
    _INITIAL_CAP = 256

    def __init__(self, max_learned: int | None = 4000) -> None:
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        # Flat watch table: the list for literal ``lit`` lives at index
        # ``lit + _cap``.  Entries are ``(clause_index, blocker)`` pairs;
        # the blocker is the clause's other watched literal as of the
        # entry's last refresh, so a true blocker that still matches the
        # other watch proves the clause satisfied without normalizing it.
        # Binary clauses store ``-clause_index - 1`` instead: their
        # blocker *is* the other watch forever (a watch only moves on
        # clauses with a third literal), so the propagator decides them
        # from the entry alone — no clause fetch on the satisfied path.
        self._cap = self._INITIAL_CAP
        self.watches: list[list[tuple[int, int]]] = [
            [] for _ in range(2 * self._cap + 1)
        ]
        self.assign: list[int] = [UNASSIGNED]  # index 0 unused
        self.level: list[int] = [0]
        self.reason: list[int | None] = [None]
        self.activity: list[float] = [0.0]
        self.phase: list[bool] = [False]
        # Lazy VSIDS order: a min-heap of ``(-activity, var)``.  Every
        # unassigned variable always has an entry carrying its *current*
        # activity (pushed on new_var / bump / backtrack-unassign; rebuilt
        # wholesale on rescale); stale entries are discarded at pop time.
        # ``_in_order[v]`` tracks whether the heap already holds var v's
        # current-activity entry, so re-unassigning an untouched variable
        # costs no heap push.  At most one current entry exists per var.
        self._order: list[tuple[float, int]] = []
        self._in_order: list[bool] = [False]
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.prop_head = 0
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.ok = True
        # Clause-database reduction: learned clauses carry an activity
        # (bumped when used in conflict analysis); once their count passes
        # ``max_learned`` the least active half is forgotten at the next
        # restart.  ``None`` disables forgetting.
        self.clause_learnt: list[bool] = []
        self.clause_act: list[float] = []
        self.cla_inc = 1.0
        self.cla_decay = 0.999
        self.num_learned = 0
        self.max_learned = max_learned
        self.reduce_growth = 1.2
        # Statistics (exposed via repro.solver stats; used as the
        # deterministic "solver cost" metric in experiments).
        self.stats_decisions = 0
        self.stats_propagations = 0
        self.stats_conflicts = 0
        self.stats_learned = 0
        self.stats_restarts = 0
        self.stats_forgotten = 0
        self.stats_reductions = 0
        # Watched-clause visits during BCP — the unit of propagation work
        # the watch/blocker machinery exists to minimize.
        self.stats_bcp_props = 0
        # After an UNSAT-under-assumptions answer: the subset of the
        # assumption literals that already forces the conflict (the
        # *assumption core*).  None after SAT answers and after root-level
        # UNSAT (where the formula needs no assumptions to be UNSAT).
        self.last_core: list[int] | None = None

    # -- problem construction ------------------------------------------------

    def _grow_to(self, nvars: int) -> None:
        """Preallocate per-variable structures for variables ``1..nvars``.

        The watch table doubles so a burst of ``new_var`` calls (a fresh
        bit-blast encodes thousands of gate variables) costs amortized
        O(1) per variable with no per-variable dict inserts.
        """
        if nvars > self._cap:
            new_cap = self._cap
            while nvars > new_cap:
                new_cap *= 2
            old, old_cap = self.watches, self._cap
            new: list[list[tuple[int, int]]] = [[] for _ in range(2 * new_cap + 1)]
            for v in range(1, len(self.assign)):  # vars allocated so far
                new[new_cap + v] = old[old_cap + v]
                new[new_cap - v] = old[old_cap - v]
            self.watches = new
            self._cap = new_cap
        append_assign = self.assign.append
        append_level = self.level.append
        append_reason = self.reason.append
        append_act = self.activity.append
        append_phase = self.phase.append
        append_in_order = self._in_order.append
        order = self._order
        for v in range(len(self.assign), nvars + 1):
            append_assign(UNASSIGNED)
            append_level(0)
            append_reason(None)
            append_act(0.0)
            append_phase(False)
            append_in_order(True)
            heapq.heappush(order, (0.0, v))

    def new_var(self) -> int:
        self.num_vars += 1
        self._grow_to(self.num_vars)
        return self.num_vars

    def add_clause(self, lits: list[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT.

        May be called between :meth:`solve` calls (incremental use): any
        leftover non-root assignment from a previous answer is undone first
        so root-level simplification stays sound.
        """
        if not self.ok:
            return False
        if self.trail_lim:
            self._backtrack(0)
        assign = self.assign
        level = self.level
        seen: set[int] = set()
        out: list[int] = []
        for lit in lits:
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            var = lit if lit > 0 else -lit
            val = assign[var]
            if val != UNASSIGNED and level[var] == 0:
                if (val == 1) == (lit > 0):
                    return True  # already satisfied at root
                continue  # falsified at root: drop literal
            seen.add(lit)
            out.append(lit)
        if not out:
            self.ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self.ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self.ok = False
                return False
            return True
        self._attach_clause(out, learnt=False)
        return True

    def _attach_clause(self, lits: list[int], learnt: bool) -> int:
        idx = len(self.clauses)
        self.clauses.append(lits)
        self.clause_learnt.append(learnt)
        self.clause_act.append(self.cla_inc if learnt else 0.0)
        if learnt:
            self.num_learned += 1
        cap = self._cap
        eci = -idx - 1 if len(lits) == 2 else idx
        self.watches[lits[0] + cap].append((eci, lits[1]))
        self.watches[lits[1] + cap].append((eci, lits[0]))
        return idx

    # -- assignment helpers ---------------------------------------------------

    def _lit_value(self, lit: int) -> bool | None:
        val = self.assign[abs(lit)]
        if val == UNASSIGNED:
            return None
        return bool(val) if lit > 0 else not bool(val)

    def value(self, var: int) -> bool | None:
        """Model value of a variable after a SAT answer."""
        val = self.assign[var]
        return None if val == UNASSIGNED else bool(val)

    def _enqueue(self, lit: int, reason_clause: int | None) -> bool:
        val = self._lit_value(lit)
        if val is not None:
            return val
        var = abs(lit)
        self.assign[var] = 1 if lit > 0 else 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason_clause
        self.trail.append(lit)
        return True

    # -- BCP with two watched literals ----------------------------------------

    def _propagate(self) -> int | None:
        """Propagate; returns a conflicting clause index or None.

        Hot loop: everything is inlined int arithmetic on the flat
        arrays.  Kept watch entries are compacted in place (write index
        chasing the read index) instead of building a fresh list, and a
        true blocker that still matches the clause's other watch skips
        the clause outright — behaviorally identical to the legacy
        kernel's "first watch already true" keep.
        """
        clauses = self.clauses
        watches = self.watches
        assign = self.assign
        level = self.level
        reason = self.reason
        trail = self.trail
        cap = self._cap
        cur_level = len(self.trail_lim)
        head = self.prop_head
        pops = 0
        visits = 0
        while head < len(trail):
            lit = trail[head]
            head += 1
            pops += 1
            falsified = -lit
            wl = watches[falsified + cap]
            n = len(wl)
            if not n:
                continue
            read = 0
            write = 0
            while read < n:
                entry = wl[read]
                read += 1
                visits += 1
                ci = entry[0]
                blocker = entry[1]
                if blocker > 0:
                    bval = assign[blocker]
                    b_true = bval == 1
                    b_false = bval == 0
                else:
                    bval = assign[-blocker]
                    b_true = bval == 0
                    b_false = bval == 1
                if ci < 0:
                    # Binary clause: the blocker is exactly the other
                    # watched literal, so the entry decides the clause.
                    if b_true:
                        wl[write] = entry
                        write += 1
                        continue
                    ci = -ci - 1
                    clause = clauses[ci]
                    # Normalize for conflict analysis / reason reads.
                    if clause[0] == falsified:
                        clause[0] = blocker
                        clause[1] = falsified
                    wl[write] = entry
                    write += 1
                    if b_false:
                        # Conflict: keep remaining watches, report.
                        wl[write:] = wl[read:n]
                        self.prop_head = head
                        self.stats_propagations += pops
                        self.stats_bcp_props += visits
                        return ci
                    # Unit: enqueue the blocker.
                    if blocker > 0:
                        assign[blocker] = 1
                        level[blocker] = cur_level
                        reason[blocker] = ci
                    else:
                        var = -blocker
                        assign[var] = 0
                        level[var] = cur_level
                        reason[var] = ci
                    trail.append(blocker)
                    continue
                clause = clauses[ci]
                c0 = clause[0]
                first = clause[1] if c0 == falsified else c0
                if b_true and first == blocker:
                    wl[write] = entry
                    write += 1
                    continue
                # Ensure the falsified literal is at position 1.
                if c0 == falsified:
                    clause[0] = first
                    clause[1] = falsified
                if first > 0:
                    fval = assign[first]
                    f_true = fval == 1
                    f_false = fval == 0
                else:
                    fval = assign[-first]
                    f_true = fval == 0
                    f_false = fval == 1
                if f_true:
                    wl[write] = (ci, first)
                    write += 1
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    q = clause[k]
                    if q > 0:
                        q_false = assign[q] == 0
                    else:
                        q_false = assign[-q] == 1
                    if not q_false:
                        clause[1] = q
                        clause[k] = falsified
                        watches[q + cap].append((ci, first))
                        moved = True
                        break
                if moved:
                    continue
                wl[write] = (ci, first)
                write += 1
                if f_false:
                    # Conflict: keep remaining watches, report.
                    wl[write:] = wl[read:n]
                    self.prop_head = head
                    self.stats_propagations += pops
                    self.stats_bcp_props += visits
                    return ci
                # Unit: enqueue ``first`` (inlined _enqueue on unassigned).
                if first > 0:
                    assign[first] = 1
                    level[first] = cur_level
                    reason[first] = ci
                else:
                    var = -first
                    assign[var] = 0
                    level[var] = cur_level
                    reason[var] = ci
                trail.append(first)
            del wl[write:n]
        self.prop_head = head
        self.stats_propagations += pops
        self.stats_bcp_props += visits
        return None

    # -- conflict analysis ------------------------------------------------------

    def _bump(self, var: int) -> None:
        act = self.activity[var] + self.var_inc
        self.activity[var] = act
        if act > 1e100:
            activity = self.activity
            for v in range(1, self.num_vars + 1):
                activity[v] *= 1e-100
            self.var_inc *= 1e-100
            # Every heap entry's cached activity just went stale at once:
            # rebuild with current values (assigned vars are filtered
            # lazily at pop time, as always).
            self._order = [(-activity[v], v) for v in range(1, self.num_vars + 1)]
            heapq.heapify(self._order)
            self._in_order = [True] * (self.num_vars + 1)
        else:
            # The activity changed, so any older entry is now stale; this
            # fresh push is the var's unique current entry.
            heapq.heappush(self._order, (-act, var))
            self._in_order[var] = True

    def _cla_bump(self, ci: int) -> None:
        if not self.clause_learnt[ci]:
            return
        self.clause_act[ci] += self.cla_inc
        if self.clause_act[ci] > 1e20:
            for i in range(len(self.clause_act)):
                self.clause_act[i] *= 1e-20
            self.cla_inc *= 1e-20

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP conflict analysis.

        Returns (learned clause with asserting literal first, backjump level).
        """
        cur_level = len(self.trail_lim)
        seen = [False] * (self.num_vars + 1)
        learned: list[int] = []
        counter = 0
        lit = None
        self._cla_bump(conflict)
        clause = self.clauses[conflict]
        idx = len(self.trail) - 1
        while True:
            for q in clause if lit is None else clause[1:]:
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= cur_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Pick next literal from the trail at current level.
            while not seen[abs(self.trail[idx])]:
                idx -= 1
            lit = self.trail[idx]
            idx -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                learned.insert(0, -lit)
                break
            reason_ci = self.reason[var]
            self._cla_bump(reason_ci)
            clause = self.clauses[reason_ci]
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        max_i = 1
        for k in range(2, len(learned)):
            if self.level[abs(learned[k])] > self.level[abs(learned[max_i])]:
                max_i = k
        learned[1], learned[max_i] = learned[max_i], learned[1]
        return learned, self.level[abs(learned[1])]

    def _backtrack(self, target_level: int) -> None:
        order = self._order
        activity = self.activity
        assign = self.assign
        phase = self.phase
        reason = self.reason
        trail = self.trail
        in_order = self._in_order
        heappush = heapq.heappush
        while len(self.trail_lim) > target_level:
            bound = self.trail_lim.pop()
            while len(trail) > bound:
                lit = trail.pop()
                var = lit if lit > 0 else -lit
                phase[var] = assign[var] == 1
                assign[var] = UNASSIGNED
                reason[var] = None
                if not in_order[var]:
                    heappush(order, (-activity[var], var))
                    in_order[var] = True
        self.prop_head = min(self.prop_head, len(trail))

    # -- clause-database reduction --------------------------------------------

    def _maybe_reduce(self) -> None:
        if self.max_learned is not None and self.num_learned > self.max_learned:
            self.reduce_db()
            # Geometric growth: each reduction earns a bigger database, so
            # a long-lived solver converges instead of thrashing.
            self.max_learned = int(self.max_learned * self.reduce_growth) + 1

    def reduce_db(self) -> int:
        """Forget the least-active half of the learned clauses.

        Only valid at root level (``trail_lim`` empty): the sole clause
        references alive there are the reasons of root-level assignments,
        which are locked and kept.  Deleting any learned clause is sound —
        each is a consequence of the original formula — it only costs the
        solver re-deriving it.  Binary learned clauses are kept (cheap to
        store, expensive to relearn).  Returns the number forgotten.
        """
        if self.trail_lim:
            raise RuntimeError("reduce_db requires root level")
        locked = {
            ci for ci in (self.reason[abs(lit)] for lit in self.trail) if ci is not None
        }
        candidates = [
            ci
            for ci in range(len(self.clauses))
            if self.clause_learnt[ci] and ci not in locked and len(self.clauses[ci]) > 2
        ]
        candidates.sort(key=lambda ci: self.clause_act[ci])
        doomed = set(candidates[: len(candidates) // 2])
        if not doomed:
            return 0
        mapping: dict[int, int] = {}
        clauses: list[list[int]] = []
        learnt: list[bool] = []
        act: list[float] = []
        for ci, clause in enumerate(self.clauses):
            if ci in doomed:
                continue
            mapping[ci] = len(clauses)
            clauses.append(clause)
            learnt.append(self.clause_learnt[ci])
            act.append(self.clause_act[ci])
        self.clauses = clauses
        self.clause_learnt = learnt
        self.clause_act = act
        # Watched literals live at positions 0/1 of every clause (the
        # propagation loop maintains that), so rebuilding the watch lists
        # from those positions reproduces the watch structure exactly.
        # Blockers are refreshed to the current other watch — blockers
        # only gate the skip heuristic, never the verdict.
        for wl in self.watches:
            if wl:
                wl.clear()
        cap = self._cap
        for nc, clause in enumerate(clauses):
            eci = -nc - 1 if len(clause) == 2 else nc
            self.watches[clause[0] + cap].append((eci, clause[1]))
            self.watches[clause[1] + cap].append((eci, clause[0]))
        for v in range(1, self.num_vars + 1):
            r = self.reason[v]
            if r is not None:
                self.reason[v] = mapping[r]
        forgotten = len(doomed)
        self.num_learned -= forgotten
        self.stats_forgotten += forgotten
        self.stats_reductions += 1
        return forgotten

    # -- assumption-core extraction (MiniSat's analyzeFinal) -------------------

    def _analyze_final(self, seed_lits: list[int]) -> list[int]:
        """Assumption literals whose conjunction already forces a conflict.

        Walks the implication graph from ``seed_lits`` back through trail
        reasons; every reached pseudo-decision (``reason is None`` above
        root level) is an assumption — all open levels are assumption
        levels when this is called.  Must run *before* backtracking, while
        trail, levels, and reasons still describe the conflict.
        """
        seen = {abs(lit) for lit in seed_lits if self.level[abs(lit)] > 0}
        core: list[int] = []
        for lit in reversed(self.trail):
            var = abs(lit)
            if var not in seen:
                continue
            seen.discard(var)
            reason = self.reason[var]
            if reason is None:
                if self.level[var] > 0:
                    core.append(lit)
            else:
                for q in self.clauses[reason]:
                    if abs(q) != var and self.level[abs(q)] > 0:
                        seen.add(abs(q))
        core.reverse()
        return core

    # -- decisions -----------------------------------------------------------

    def _decide(self) -> int | None:
        """Pop the unassigned variable of maximum activity (min index on ties).

        Heap entries are ``(-activity, var)``; an entry is valid iff the
        variable is unassigned and the cached activity is current.  The
        ordering reproduces the legacy linear scan exactly: the scan kept
        the first strict maximum in index order, and the heap pops
        ``(max activity, min var)``.
        """
        order = self._order
        assign = self.assign
        activity = self.activity
        in_order = self._in_order
        heappop = heapq.heappop
        while order:
            neg_act, v = order[0]
            if activity[v] == -neg_act:
                if assign[v] == UNASSIGNED:
                    return v if self.phase[v] else -v
                # Current entry of an assigned var: popping removes the
                # var's only current entry.
                in_order[v] = False
            heappop(order)
        return None

    # -- main loop -----------------------------------------------------------

    def solve(
        self, conflict_budget: int | None = None, assumptions: list[int] | None = None
    ) -> str:
        """Run the CDCL loop; returns :data:`SatResult.SAT` or ``UNSAT``.

        ``conflict_budget`` bounds total conflicts (raises ``TimeoutError``
        when exhausted); experiments use it as a per-query solver timeout.

        ``assumptions`` are literals taken as pseudo-decisions at levels
        ``1..k`` before the free search starts.  UNSAT under assumptions
        leaves the solver reusable (``ok`` stays True); only a root-level
        conflict marks the formula permanently UNSAT.  After a SAT answer
        the trail is kept so :meth:`value` reads the model; the next
        :meth:`solve` or :meth:`add_clause` call clears it.  An
        UNSAT-under-assumptions answer additionally leaves the culpable
        assumption subset in :attr:`last_core`.
        """
        self.last_core = None
        if not self.ok:
            return SatResult.UNSAT
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self.ok = False
            return SatResult.UNSAT
        self._maybe_reduce()
        assumed = list(assumptions) if assumptions else []
        restart_num = 1
        conflicts_until_restart = 100 * luby(restart_num)
        total_conflicts = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats_conflicts += 1
                total_conflicts += 1
                if conflict_budget is not None and total_conflicts > conflict_budget:
                    self._backtrack(0)
                    raise TimeoutError("SAT conflict budget exhausted")
                if not self.trail_lim:
                    self.ok = False
                    return SatResult.UNSAT
                if len(self.trail_lim) <= len(assumed):
                    # Conflict forced entirely by the assumptions: UNSAT
                    # under assumptions, but the formula itself is intact.
                    self.last_core = self._analyze_final(self.clauses[conflict])
                    self._backtrack(0)
                    return SatResult.UNSAT
                learned, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if len(learned) == 1:
                    self._enqueue(learned[0], None)
                else:
                    idx = self._attach_clause(learned, learnt=True)
                    self.stats_learned += 1
                    self._enqueue(learned[0], idx)
                self.var_inc /= self.var_decay
                self.cla_inc /= self.cla_decay
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    restart_num += 1
                    conflicts_until_restart = 100 * luby(restart_num)
                    self.stats_restarts += 1
                    self._backtrack(0)
                    self._maybe_reduce()
                elif self.max_learned is not None and self.num_learned > self.max_learned:
                    # Cap tripped mid-search: force a (non-Luby) restart to
                    # reach root level, where reduction is sound.
                    self._backtrack(0)
                    self._maybe_reduce()
            elif len(self.trail_lim) < len(assumed):
                # Place the next assumption as a pseudo-decision.  A level
                # is opened even when the literal already holds, keeping
                # level k <-> assumption k aligned for the conflict check.
                lit = assumed[len(self.trail_lim)]
                val = self._lit_value(lit)
                if val is False:
                    # Earlier assumptions already imply ¬lit: the core is
                    # this assumption plus whatever forced its negation.
                    core = self._analyze_final([lit])
                    core.append(lit)
                    self.last_core = core
                    self._backtrack(0)
                    return SatResult.UNSAT
                self.trail_lim.append(len(self.trail))
                if val is None:
                    self._enqueue(lit, None)
            else:
                decision = self._decide()
                if decision is None:
                    return SatResult.SAT
                self.stats_decisions += 1
                self.trail_lim.append(len(self.trail))
                self._enqueue(decision, None)


class LegacyCDCLSolver:
    """The original dict-of-lists CDCL kernel, kept as the ablation baseline.

    Search-identical to :class:`CDCLSolver` (same decisions, propagation
    order, conflicts, learned clauses and models); only the data layout
    differs.  Selected with ``set_kernel("legacy")`` or
    ``REPRO_SAT_KERNEL=legacy``.
    """

    def __init__(self, max_learned: int | None = 4000) -> None:
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        self.watches: dict[int, list[int]] = {}
        self.assign: list[int] = [UNASSIGNED]  # index 0 unused
        self.level: list[int] = [0]
        self.reason: list[int | None] = [None]
        self.activity: list[float] = [0.0]
        self.phase: list[bool] = [False]
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.prop_head = 0
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.ok = True
        self.clause_learnt: list[bool] = []
        self.clause_act: list[float] = []
        self.cla_inc = 1.0
        self.cla_decay = 0.999
        self.num_learned = 0
        self.max_learned = max_learned
        self.reduce_growth = 1.2
        self.stats_decisions = 0
        self.stats_propagations = 0
        self.stats_conflicts = 0
        self.stats_learned = 0
        self.stats_restarts = 0
        self.stats_forgotten = 0
        self.stats_reductions = 0
        # This kernel predates per-visit accounting; stays 0 so the
        # chain's delta bookkeeping works unchanged on either kernel.
        self.stats_bcp_props = 0
        self.last_core: list[int] | None = None

    # -- problem construction ------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        self.assign.append(UNASSIGNED)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.phase.append(False)
        v = self.num_vars
        self.watches[v] = []
        self.watches[-v] = []
        return v

    add_clause = CDCLSolver.add_clause

    def _attach_clause(self, lits: list[int], learnt: bool) -> int:
        idx = len(self.clauses)
        self.clauses.append(lits)
        self.clause_learnt.append(learnt)
        self.clause_act.append(self.cla_inc if learnt else 0.0)
        if learnt:
            self.num_learned += 1
        self.watches[lits[0]].append(idx)
        self.watches[lits[1]].append(idx)
        return idx

    # -- assignment helpers ---------------------------------------------------

    _lit_value = CDCLSolver._lit_value
    value = CDCLSolver.value
    _enqueue = CDCLSolver._enqueue

    # -- BCP with two watched literals ----------------------------------------

    def _propagate(self) -> int | None:
        """Propagate; returns a conflicting clause index or None."""
        while self.prop_head < len(self.trail):
            lit = self.trail[self.prop_head]
            self.prop_head += 1
            self.stats_propagations += 1
            falsified = -lit
            watch_list = self.watches[falsified]
            new_list: list[int] = []
            i = 0
            n = len(watch_list)
            while i < n:
                ci = watch_list[i]
                i += 1
                clause = self.clauses[ci]
                # Ensure the falsified literal is at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) is True:
                    new_list.append(ci)
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches[clause[1]].append(ci)
                        moved = True
                        break
                if moved:
                    continue
                new_list.append(ci)
                if self._lit_value(first) is False:
                    # Conflict: keep remaining watches, report.
                    new_list.extend(watch_list[i:n])
                    self.watches[falsified] = new_list
                    return ci
                self._enqueue(first, ci)
            self.watches[falsified] = new_list
        return None

    # -- conflict analysis ------------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    _cla_bump = CDCLSolver._cla_bump
    _analyze = CDCLSolver._analyze

    def _backtrack(self, target_level: int) -> None:
        while len(self.trail_lim) > target_level:
            bound = self.trail_lim.pop()
            while len(self.trail) > bound:
                lit = self.trail.pop()
                var = abs(lit)
                self.phase[var] = self.assign[var] == 1
                self.assign[var] = UNASSIGNED
                self.reason[var] = None
        self.prop_head = min(self.prop_head, len(self.trail))

    # -- clause-database reduction --------------------------------------------

    _maybe_reduce = CDCLSolver._maybe_reduce

    def reduce_db(self) -> int:
        """Forget the least-active half of the learned clauses.

        See :meth:`CDCLSolver.reduce_db`; identical policy on the dict
        watch layout.
        """
        if self.trail_lim:
            raise RuntimeError("reduce_db requires root level")
        locked = {
            ci for ci in (self.reason[abs(lit)] for lit in self.trail) if ci is not None
        }
        candidates = [
            ci
            for ci in range(len(self.clauses))
            if self.clause_learnt[ci] and ci not in locked and len(self.clauses[ci]) > 2
        ]
        candidates.sort(key=lambda ci: self.clause_act[ci])
        doomed = set(candidates[: len(candidates) // 2])
        if not doomed:
            return 0
        mapping: dict[int, int] = {}
        clauses: list[list[int]] = []
        learnt: list[bool] = []
        act: list[float] = []
        for ci, clause in enumerate(self.clauses):
            if ci in doomed:
                continue
            mapping[ci] = len(clauses)
            clauses.append(clause)
            learnt.append(self.clause_learnt[ci])
            act.append(self.clause_act[ci])
        self.clauses = clauses
        self.clause_learnt = learnt
        self.clause_act = act
        # Watched literals live at positions 0/1 of every clause (the
        # propagation loop maintains that), so rebuilding the watch lists
        # from those positions reproduces the watch structure exactly.
        for key in self.watches:
            self.watches[key].clear()
        for nc, clause in enumerate(clauses):
            self.watches[clause[0]].append(nc)
            self.watches[clause[1]].append(nc)
        for v in range(1, self.num_vars + 1):
            r = self.reason[v]
            if r is not None:
                self.reason[v] = mapping[r]
        forgotten = len(doomed)
        self.num_learned -= forgotten
        self.stats_forgotten += forgotten
        self.stats_reductions += 1
        return forgotten

    # -- assumption-core extraction (MiniSat's analyzeFinal) -------------------

    _analyze_final = CDCLSolver._analyze_final

    # -- decisions -----------------------------------------------------------

    def _decide(self) -> int | None:
        best_var = 0
        best_act = -1.0
        for v in range(1, self.num_vars + 1):
            if self.assign[v] == UNASSIGNED and self.activity[v] > best_act:
                best_var = v
                best_act = self.activity[v]
        if best_var == 0:
            return None
        return best_var if self.phase[best_var] else -best_var

    # -- main loop -----------------------------------------------------------

    solve = CDCLSolver.solve


# -- kernel selection ----------------------------------------------------------

_KERNELS: dict[str, type] = {
    "array": CDCLSolver,
    "legacy": LegacyCDCLSolver,
}

#: Active kernel name; the bit-blaster constructs through :func:`make_solver`.
ACTIVE_KERNEL = os.environ.get("REPRO_SAT_KERNEL", "array")
if ACTIVE_KERNEL not in _KERNELS:  # pragma: no cover - env guard
    ACTIVE_KERNEL = "array"


def set_kernel(name: str) -> str:
    """Select the CDCL kernel (``"array"`` or ``"legacy"``); returns the old."""
    if name not in _KERNELS:
        raise ValueError(f"unknown SAT kernel {name!r}")
    global ACTIVE_KERNEL
    old = ACTIVE_KERNEL
    ACTIVE_KERNEL = name
    return old


def make_solver(max_learned: int | None = 4000):
    """Construct a solver of the active kernel (the bit-blaster's hook)."""
    return _KERNELS[ACTIVE_KERNEL](max_learned=max_learned)
