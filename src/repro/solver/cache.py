"""Query caching in the style of KLEE's counterexample cache.

Constraint sets are canonicalized to frozensets of interned-expression ids.
Three lookup tiers:

* **exact** — same constraint set seen before (SAT model or UNSAT verdict);
* **subset-UNSAT** — a previously UNSAT set that is a subset of the query
  proves the query UNSAT (adding constraints cannot restore satisfiability);
* **model reuse** — recent SAT models are cheap to *evaluate* against the
  new query; any hit proves SAT (this subsumes superset-SAT lookups).
"""

from __future__ import annotations

from collections import OrderedDict

from ..expr.evaluate import EvalError, evaluate
from ..expr.nodes import Expr

# Sentinels for the per-model evaluation memo: distinguishable from any
# genuine evaluate() result (ints, including 0).
_MISSING = object()
_EVAL_ERROR = object()


class QueryCache:
    """Bounded cache of solver verdicts keyed by canonical constraint sets."""

    def __init__(self, max_entries: int = 8192, max_models: int = 64, max_unsat_sets: int = 256):
        self._exact: OrderedDict[frozenset[int], tuple[bool, dict[str, int] | None]] = (
            OrderedDict()
        )
        self._recent_models: OrderedDict[int, dict[str, int]] = OrderedDict()
        self._model_counter = 0
        # (model id -> (expr eid -> evaluate() result)): path conditions
        # grow one conjunct at a time, so successive model-reuse scans
        # re-evaluate almost the same constraints against almost the same
        # models.  evaluate() is pure, so memoizing per (model, expr) is
        # observation-equivalent; memos die with their model's eviction.
        self._eval_cache: dict[int, dict[int, object]] = {}
        self._unsat_sets: OrderedDict[frozenset[int], None] = OrderedDict()
        self.max_entries = max_entries
        self.max_models = max_models
        self.max_unsat_sets = max_unsat_sets
        self.hits_exact = 0
        self.hits_subset_unsat = 0
        self.hits_model_reuse = 0
        self.misses = 0

    @staticmethod
    def key_of(constraints: list[Expr]) -> frozenset[int]:
        return frozenset(c.eid for c in constraints)

    def lookup(self, constraints: list[Expr]) -> tuple[bool, dict[str, int] | None] | None:
        """Return a cached (is_sat, model) verdict, or None on miss."""
        key = self.key_of(constraints)
        hit = self._exact.get(key)
        if hit is not None:
            self._exact.move_to_end(key)
            self.hits_exact += 1
            return hit
        for unsat_key in self._unsat_sets:
            if unsat_key <= key:
                self.hits_subset_unsat += 1
                return (False, None)
        eval_cache = self._eval_cache
        for mid, model in reversed(self._recent_models.items()):
            memo = eval_cache.get(mid)
            if memo is None:
                memo = eval_cache[mid] = {}
            satisfied = True
            for c in constraints:
                val = memo.get(c.eid, _MISSING)
                if val is _MISSING:
                    try:
                        val = evaluate(c, model)
                    except EvalError:
                        val = _EVAL_ERROR
                    memo[c.eid] = val
                if val is _EVAL_ERROR or not val:
                    satisfied = False
                    break
            if satisfied:
                self.hits_model_reuse += 1
                return (True, model)
        self.misses += 1
        return None

    def store(self, constraints: list[Expr], is_sat: bool, model: dict[str, int] | None) -> None:
        key = self.key_of(constraints)
        self._exact[key] = (is_sat, model)
        if len(self._exact) > self.max_entries:
            self._exact.popitem(last=False)
        if is_sat and model is not None:
            self._model_counter += 1
            self._recent_models[self._model_counter] = model
            if len(self._recent_models) > self.max_models:
                evicted, _ = self._recent_models.popitem(last=False)
                self._eval_cache.pop(evicted, None)
        elif not is_sat:
            self._unsat_sets[key] = None
            if len(self._unsat_sets) > self.max_unsat_sets:
                self._unsat_sets.popitem(last=False)

    def seed_model(self, model: dict[str, int]) -> None:
        """Inject a known-good assignment into the model-reuse tier.

        Warm-start seeding (repro.store): corpus test inputs are full
        satisfying assignments of previously completed paths, so evaluating
        them against new queries can prove SAT without solving.  Seeding
        adds no exact entry — only lookup evidence — and therefore cannot
        change any verdict.
        """
        self._model_counter += 1
        self._recent_models[self._model_counter] = dict(model)
        if len(self._recent_models) > self.max_models:
            evicted, _ = self._recent_models.popitem(last=False)
            self._eval_cache.pop(evicted, None)

    def clear(self) -> None:
        self._exact.clear()
        self._recent_models.clear()
        self._unsat_sets.clear()
        self._eval_cache.clear()

    @property
    def hits(self) -> int:
        return self.hits_exact + self.hits_subset_unsat + self.hits_model_reuse
