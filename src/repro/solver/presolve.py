"""Incremental pre-solve tier: abstract domains ahead of bit-blasting.

Cheap, *incomplete* reasoning answers a large fraction of branch-feasibility
queries outright (KLEE's constraint simplification, ESBMC's pre-SAT interval
pass).  This module generalizes the old one-shot ``domains.quick_check`` into
a stateful engine that maintains abstract facts **incrementally along each
path** instead of re-deriving them per query:

* **Interval domain** — unsigned ranges per variable, refined by a work-list
  fixpoint over the constraint graph: narrowing one variable re-processes
  every absorbed constraint that watches it, so facts flow through chains
  like ``{x == 3, y == x + 1}`` without ad-hoc iteration counts.
* **Known-bits domain** — (mask, value) pairs tracking bit-level facts
  through ``and/or/xor/shift/zext/sext/extract/concat`` *and through ite*,
  so the ite-heavy expressions state merging produces stay analyzable.
* **Boolean facts** — truth values for boolean variables and derived
  refutation of compound conditions.

A :class:`PresolveEnv` is sound by construction: facts are derived only from
the constraints it has absorbed, SAT answers are always *verified by
evaluation* against the original constraints, and UNSAT answers follow from
over-approximating transfer functions.  ``unknown`` falls through to the
bit-blaster, so the tier can only change *which tier answers*, never the
verdict (the fastpath neutrality law; see tests/test_solver_presolve.py).

:class:`PresolveManager` keys environments per independence-group signature
(the same key the incremental chain uses for persistent blasters) and keeps
a short LRU of per-prefix snapshots, so a growing path condition extends the
previous environment instead of rebuilding it — and the sibling
``pc ∧ ¬cond`` branch query still finds the shared ``pc`` snapshot.

The module also hosts the **solver-boundary structural simplifier**
(:func:`simplify_group`): union-find style equality/constant propagation
substitutes defined variables into the remaining constraints before
bit-blasting, with a process-wide memo.  Rewriting stays strictly at the
solver boundary — caches, stores, ``path_id``s and canonical keys all see
the original constraint set — and is model-preserving because every binding
is re-emitted as a defining equality.
"""

from __future__ import annotations

import os
from collections import OrderedDict, deque

from ..expr import nodes as N
from ..expr import ops
from ..expr.evaluate import EvalError, evaluate
from ..expr.nodes import Expr
from ..expr.subst import substitute

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


class _Empty(Exception):
    """Internal: an abstract value (or the whole env) became empty."""


# Work-list batching knob (ablation surface).  When on, each environment
# keeps one generation-tagged fact memo across work-list pops instead of a
# fresh dict per pop; entries are validated against the narrow-event
# generation counter, so served values are always identical to what a fresh
# recomputation would produce (see ``PresolveEnv.facts``).  Both settings
# are value-exact; the knob only moves where time is spent.
_BATCHING = os.environ.get("REPRO_PRESOLVE_BATCH", "1") != "0"


def set_batching(on: bool) -> bool:
    """Toggle work-list memo batching; returns the previous setting."""
    global _BATCHING
    old = _BATCHING
    _BATCHING = bool(on)
    return old


# ---------------------------------------------------------------------------
# Abstract facts: one fused (lo, hi, mask, val) tuple per expression.
#
# ``(lo, hi)`` is a sound unsigned interval; ``(mask, val)`` are known bits
# (mask = bits whose value is known, val = those values; val & ~mask == 0).
# ``_reduce`` exchanges information between the two domains (a lightweight
# reduced product): known bits bound the interval, and an interval upper
# bound pins the high bits to zero.
# ---------------------------------------------------------------------------


def _reduce(lo: int, hi: int, mask: int, val: int, wmask: int) -> tuple[int, int, int, int]:
    kb_lo = val
    kb_hi = val | (wmask & ~mask)
    lo = max(lo, kb_lo)
    hi = min(hi, kb_hi)
    if lo > hi:
        raise _Empty
    # High bits above hi's bit length are provably zero.
    high_zero = wmask & ~((1 << hi.bit_length()) - 1)
    mask |= high_zero
    val &= ~high_zero
    if lo == hi:
        mask, val = wmask, lo
    return lo, hi, mask, val


def _merge_bits(mask_a: int, val_a: int, mask_b: int, val_b: int) -> tuple[int, int]:
    """Union of two known-bits facts about the *same* value."""
    if (val_a ^ val_b) & mask_a & mask_b:
        raise _Empty
    mask = mask_a | mask_b
    return mask, (val_a | val_b) & mask


def _trailing_known(mask: int) -> int:
    """Number of contiguous known low bits."""
    count = 0
    while mask & 1:
        count += 1
        mask >>= 1
    return count


def _trailing_zeros_known(mask: int, val: int) -> int:
    """Number of contiguous low bits *known to be zero*."""
    count = 0
    while (mask & 1) and not (val & 1):
        count += 1
        mask >>= 1
        val >>= 1
    return count


_FULL = None  # sentinel for "no fact cached yet"


class PresolveEnv:
    """Abstract facts derived from an absorbed set of constraints.

    Monotone: absorbing more constraints only narrows facts, so an
    environment built for a path prefix remains sound for any superset
    query — the manager's snapshot reuse depends on exactly this.
    """

    __slots__ = (
        "ranges",
        "bits",
        "bools",
        "vars",
        "watch",
        "absorbed",
        "infeasible",
        "_changed",
        "_memo",
        "_gen",
        "_pop_gen",
        "batch_rounds",
    )

    def __init__(self) -> None:
        self.ranges: dict[str, tuple[int, int]] = {}
        self.bits: dict[str, tuple[int, int]] = {}
        self.bools: dict[str, bool] = {}
        self.vars: dict[str, Expr] = {}
        self.watch: dict[str, list[Expr]] = {}
        self.absorbed: set[int] = set()
        self.infeasible = False
        self._changed: set[str] = set()
        # Generation-tagged fact memo.  ``_gen`` counts narrow events (any
        # write to ranges/bits/bools); every memo entry records the
        # generation it was computed at.  Bitvector entries (key = eid) are
        # served when computed this pop or when no narrow intervened —
        # exactly the staleness the historical fresh-dict-per-pop memo
        # tolerated.  Boolean entries (key = ~eid) are served only when no
        # narrow intervened, because ``bool_fact`` was historically never
        # memoized and always saw the latest environment.
        self._memo: dict[int, tuple[int, object]] = {}
        self._gen = 0
        self._pop_gen = 0
        self.batch_rounds = 0

    def clone(self) -> "PresolveEnv":
        other = object.__new__(PresolveEnv)
        other.ranges = dict(self.ranges)
        other.bits = dict(self.bits)
        other.bools = dict(self.bools)
        other.vars = dict(self.vars)
        other.watch = {name: list(cs) for name, cs in self.watch.items()}
        other.absorbed = set(self.absorbed)
        other.infeasible = self.infeasible
        other._changed = set()
        other._memo = dict(self._memo)
        other._gen = self._gen
        other._pop_gen = self._pop_gen
        other.batch_rounds = 0
        return other

    # -- absorption (the work-list fixpoint) --------------------------------

    def absorb(self, constraints) -> bool:
        """Fold new constraints into the environment; False = infeasible.

        Each constraint is asserted once, then re-processed whenever a
        variable it watches narrows (work-list propagation).  A pop budget
        bounds pathological ping-pong chains; hitting it loses precision,
        never soundness.
        """
        if self.infeasible:
            return False
        fresh = [c for c in constraints if c.eid not in self.absorbed]
        for c in fresh:
            self.absorbed.add(c.eid)
            for name in c.variables:
                self.watch.setdefault(name, []).append(c)
                if name not in self.vars:
                    self._register_vars(c)
        queue: deque[Expr] = deque(fresh)
        queued: set[int] = {c.eid for c in fresh}
        budget = 16 + 6 * len(self.absorbed)
        pops = 0
        shared = self._memo if _BATCHING else None
        try:
            while queue and pops < budget:
                c = queue.popleft()
                queued.discard(c.eid)
                pops += 1
                self._changed = set()
                self._pop_gen = self._gen
                if shared is None:
                    self._assert_bool(c, True, {})
                else:
                    if shared:
                        self.batch_rounds += 1
                    self._assert_bool(c, True, shared)
                for name in self._changed:
                    for watcher in self.watch.get(name, ()):
                        if watcher.eid not in queued and watcher is not c:
                            queue.append(watcher)
                            queued.add(watcher.eid)
        except _Empty:
            self.infeasible = True
            return False
        return True

    def _register_vars(self, c: Expr) -> None:
        for node in c.iter_nodes():
            if node.kind == N.VAR:
                self.vars.setdefault(node.name, node)

    # -- fact readers -------------------------------------------------------

    def var_facts(self, name: str, width: int) -> tuple[int, int, int, int]:
        wmask = (1 << width) - 1
        lo, hi = self.ranges.get(name, (0, wmask))
        mask, val = self.bits.get(name, (0, 0))
        return _reduce(lo, hi, mask, val, wmask)

    def facts(self, e: Expr, memo: dict[int, tuple[int, object]]) -> tuple[int, int, int, int]:
        """Fused (lo, hi, mask, val) facts for a bitvector expression.

        Entries are generation-tagged: a hit is served when the entry was
        computed during the current work-list pop (``gen >= _pop_gen`` —
        the within-pop staleness the historical per-pop memo tolerated) or
        when no narrow event intervened since (``gen == _gen`` — the value
        a recomputation would reproduce bit-for-bit).
        """
        hit = memo.get(e.eid)
        if hit is not None:
            g = hit[0]
            if g == self._gen or g >= self._pop_gen:
                return hit[1]
        out = self._facts_inner(e, memo)
        memo[e.eid] = (self._gen, out)
        return out

    def _facts_inner(self, e: Expr, memo) -> tuple[int, int, int, int]:
        kind = e.kind
        w = e.width
        wmask = (1 << w) - 1
        if kind == N.CONST:
            v = e.value
            return (v, v, wmask, v)
        if kind == N.VAR:
            return self.var_facts(e.name, w)
        full = (0, wmask, 0, 0)
        ch = e.children

        if kind == N.ADD or kind == N.SUB or kind == N.MUL:
            alo, ahi, am, av = self.facts(ch[0], memo)
            blo, bhi, bm, bv = self.facts(ch[1], memo)
            if kind == N.ADD:
                lo, hi = alo + blo, ahi + bhi
                if hi > wmask:
                    lo, hi = 0, wmask
            elif kind == N.SUB:
                lo, hi = alo - bhi, ahi - blo
                if lo < 0:
                    lo, hi = 0, wmask
            else:  # MUL
                lo, hi = alo * blo, ahi * bhi
                if hi > wmask:
                    lo, hi = 0, wmask
            # Low bits of +/-/* depend only on low bits of the operands.
            t = min(_trailing_known(am), _trailing_known(bm))
            mask = (1 << t) - 1
            if kind == N.ADD:
                val = (av + bv) & mask
            elif kind == N.SUB:
                val = (av - bv) & mask
            else:
                val = (av * bv) & mask
                # Known trailing zeros multiply out: a ≡ 0 (mod 2^i) and
                # b ≡ 0 (mod 2^j) imply a·b ≡ 0 (mod 2^(i+j)) — this keeps
                # even-stride expressions (y * 2, index scaling) analyzable.
                tz = min(w, _trailing_zeros_known(am, av) + _trailing_zeros_known(bm, bv))
                if tz > t:
                    mask, val = _merge_bits(mask, val, (1 << tz) - 1, 0)
            return _reduce(lo, hi, mask, val, wmask)

        if kind == N.NEG:
            alo, ahi, am, av = self.facts(ch[0], memo)
            if alo > 0:
                lo, hi = (1 << w) - ahi, (1 << w) - alo
            elif ahi == 0:
                lo, hi = 0, 0
            else:
                lo, hi = 0, wmask
            t = _trailing_known(am)
            mask = (1 << t) - 1
            return _reduce(lo, hi, mask, (-av) & mask, wmask)

        if kind == N.UDIV or kind == N.UREM:
            alo, ahi, _, _ = self.facts(ch[0], memo)
            blo, bhi, _, _ = self.facts(ch[1], memo)
            if blo >= 1:
                if kind == N.UDIV:
                    return _reduce(alo // bhi, ahi // blo, 0, 0, wmask)
                return _reduce(0, min(bhi - 1, ahi), 0, 0, wmask)
            return full

        if kind == N.BVAND or kind == N.BVOR or kind == N.BVXOR:
            alo, ahi, am, av = self.facts(ch[0], memo)
            blo, bhi, bm, bv = self.facts(ch[1], memo)
            if kind == N.BVAND:
                known1 = (am & av) & (bm & bv)
                known0 = (am & ~av) | (bm & ~bv)
                lo, hi = 0, min(ahi, bhi)
            elif kind == N.BVOR:
                known1 = (am & av) | (bm & bv)
                known0 = (am & ~av) & (bm & ~bv)
                lo = max(alo, blo)
                hi = (1 << (ahi | bhi).bit_length()) - 1
            else:  # BVXOR
                known = am & bm
                known1 = (av ^ bv) & known
                known0 = known & ~known1
                lo, hi = 0, (1 << (ahi | bhi).bit_length()) - 1
            mask = (known1 | known0) & wmask
            return _reduce(lo, hi, mask, known1 & wmask, wmask)

        if kind == N.BVNOT:
            alo, ahi, am, av = self.facts(ch[0], memo)
            return _reduce(wmask - ahi, wmask - alo, am, (~av) & am & wmask, wmask)

        if kind == N.SHL or kind == N.LSHR or kind == N.ASHR:
            if not ch[1].is_const():
                return full
            k = ch[1].value
            alo, ahi, am, av = self.facts(ch[0], memo)
            if kind == N.SHL:
                if k >= w:
                    return (0, 0, wmask, 0)
                mask = ((am << k) | ((1 << k) - 1)) & wmask
                val = (av << k) & mask
                if ahi << k <= wmask:
                    return _reduce(alo << k, ahi << k, mask, val, wmask)
                return _reduce(0, wmask, mask, val, wmask)
            if kind == N.LSHR:
                if k >= w:
                    return (0, 0, wmask, 0)
                high = wmask & ~(wmask >> k)
                return _reduce(alo >> k, ahi >> k, (am >> k) | high, av >> k, wmask)
            # ASHR: only useful when the sign bit is known zero.
            sign = 1 << (w - 1)
            if (am & sign) and not (av & sign):
                k = min(k, w - 1)
                high = wmask & ~(wmask >> k)
                return _reduce(alo >> k, min(ahi, sign - 1) >> k, (am >> k) | high, av >> k, wmask)
            return full

        if kind == N.ZEXT:
            cw = ch[0].width
            lo, hi, mask, val = self.facts(ch[0], memo)
            high = wmask & ~((1 << cw) - 1)
            return _reduce(lo, hi, mask | high, val, wmask)

        if kind == N.SEXT:
            cw = ch[0].width
            sign = 1 << (cw - 1)
            lo, hi, mask, val = self.facts(ch[0], memo)
            ext = wmask & ~((1 << cw) - 1)
            if hi < sign:
                return _reduce(lo, hi, mask | ext, val, wmask)
            if lo >= sign:
                return _reduce(lo + ext, hi + ext, mask | ext, val | ext, wmask)
            return full

        if kind == N.EXTRACT:
            hi_bit, lo_bit = e.params
            clo, chi, cm, cv = self.facts(ch[0], memo)
            mask = (cm >> lo_bit) & wmask
            val = (cv >> lo_bit) & wmask
            if lo_bit == 0 and chi <= wmask:
                return _reduce(clo, chi, mask, val, wmask)
            return _reduce(0, wmask, mask, val, wmask)

        if kind == N.CONCAT:
            hlo, hhi, hm, hv = self.facts(ch[0], memo)
            llo, lhi, lm, lv = self.facts(ch[1], memo)
            lw = ch[1].width
            return _reduce(
                (hlo << lw) + llo,
                (hhi << lw) + lhi,
                (hm << lw) | lm,
                (hv << lw) | lv,
                wmask,
            )

        if kind == N.ITE:
            truth = self.bool_fact(ch[0], memo)
            if truth is not None:
                return self.facts(ch[1] if truth else ch[2], memo)
            tlo, thi, tm, tv = self.facts(ch[1], memo)
            flo, fhi, fm, fv = self.facts(ch[2], memo)
            common = tm & fm & ~(tv ^ fv)
            return _reduce(min(tlo, flo), max(thi, fhi), common, tv & common, wmask)

        return full

    def bool_fact(self, e: Expr, memo) -> bool | None:
        """Known truth value of a boolean expression, or None.

        Composite results are memoized under key ``~eid`` (disjoint from
        the bitvector keyspace) with *strict* generation validity: a hit is
        served only when no narrow event intervened since it was computed,
        so the served value is always identical to a fresh recomputation.
        """
        kind = e.kind
        if kind == N.CONST:
            return bool(e.value)
        if kind == N.VAR:
            return self.bools.get(e.name)
        key = ~e.eid
        hit = memo.get(key)
        if hit is not None and hit[0] == self._gen:
            return hit[1]
        out = self._bool_fact_inner(e, memo)
        memo[key] = (self._gen, out)
        return out

    def _bool_fact_inner(self, e: Expr, memo) -> bool | None:
        kind = e.kind
        ch = e.children
        if kind == N.NOT:
            inner = self.bool_fact(ch[0], memo)
            return None if inner is None else not inner
        if kind == N.AND or kind == N.OR:
            a = self.bool_fact(ch[0], memo)
            b = self.bool_fact(ch[1], memo)
            if kind == N.AND:
                if a is False or b is False:
                    return False
                if a is True and b is True:
                    return True
            else:
                if a is True or b is True:
                    return True
                if a is False and b is False:
                    return False
            return None
        if kind == N.XOR:
            a = self.bool_fact(ch[0], memo)
            b = self.bool_fact(ch[1], memo)
            if a is None or b is None:
                return None
            return a != b
        if kind == N.ITE:
            cond = self.bool_fact(ch[0], memo)
            if cond is not None:
                return self.bool_fact(ch[1] if cond else ch[2], memo)
            t = self.bool_fact(ch[1], memo)
            f = self.bool_fact(ch[2], memo)
            return t if t is not None and t == f else None
        if kind in (N.EQ, N.ULT, N.ULE, N.SLT, N.SLE) and ch[0].is_bv():
            alo, ahi, am, av = self.facts(ch[0], memo)
            blo, bhi, bm, bv = self.facts(ch[1], memo)
            if kind == N.EQ:
                if ahi < blo or bhi < alo:
                    return False
                if (av ^ bv) & am & bm:
                    return False
                if alo == ahi == blo == bhi:
                    return True
                return None
            if kind == N.ULT:
                if ahi < blo:
                    return True
                if alo >= bhi:
                    return False
                return None
            if kind == N.ULE:
                if ahi <= blo:
                    return True
                if alo > bhi:
                    return False
                return None
            # Signed comparisons: decidable when both intervals stay within
            # one sign half.
            w = ch[0].width
            sa = self._signed_interval(alo, ahi, w)
            sb = self._signed_interval(blo, bhi, w)
            if sa is None or sb is None:
                return None
            if kind == N.SLT:
                if sa[1] < sb[0]:
                    return True
                if sa[0] >= sb[1]:
                    return False
            else:
                if sa[1] <= sb[0]:
                    return True
                if sa[0] > sb[1]:
                    return False
            return None
        return None

    @staticmethod
    def _signed_interval(lo: int, hi: int, width: int) -> tuple[int, int] | None:
        sign = 1 << (width - 1)
        if hi < sign:
            return (lo, hi)
        if lo >= sign:
            return (lo - (1 << width), hi - (1 << width))
        return None

    # -- backward refinement ------------------------------------------------

    def _narrow_var(self, name: str, width: int, lo: int, hi: int, mask: int, val: int) -> None:
        wmask = (1 << width) - 1
        cur_lo, cur_hi = self.ranges.get(name, (0, wmask))
        cur_m, cur_v = self.bits.get(name, (0, 0))
        new_lo, new_hi = max(cur_lo, lo), min(cur_hi, hi)
        new_m, new_v = _merge_bits(cur_m, cur_v, mask, val)
        new_lo, new_hi, new_m, new_v = _reduce(new_lo, new_hi, new_m, new_v, wmask)
        if (new_lo, new_hi) != (cur_lo, cur_hi) or (new_m, new_v) != (cur_m, cur_v):
            self.ranges[name] = (new_lo, new_hi)
            self.bits[name] = (new_m, new_v)
            self._changed.add(name)
            self._gen += 1

    def _refine(self, e: Expr, lo: int, hi: int, memo) -> None:
        """Constrain a bitvector expression's value into [lo, hi]."""
        cur_lo, cur_hi, _, _ = self.facts(e, memo)
        lo, hi = max(lo, cur_lo), min(hi, cur_hi)
        if lo > hi:
            raise _Empty
        if lo == cur_lo and hi == cur_hi:
            return
        kind = e.kind
        w = e.width
        wmask = (1 << w) - 1
        ch = e.children
        if kind == N.VAR:
            self._narrow_var(e.name, w, lo, hi, 0, 0)
            return
        if kind == N.ADD:
            alo, ahi, _, _ = self.facts(ch[0], memo)
            blo, bhi, _, _ = self.facts(ch[1], memo)
            if ahi + bhi <= wmask:  # wrap-free, so bounds transfer back
                self._refine(ch[0], max(0, lo - bhi), hi - blo, memo)
                self._refine(ch[1], max(0, lo - ahi), hi - alo, memo)
            return
        if kind == N.SUB:
            alo, ahi, _, _ = self.facts(ch[0], memo)
            blo, bhi, _, _ = self.facts(ch[1], memo)
            if alo >= bhi:  # borrow-free
                self._refine(ch[0], lo + blo, min(wmask, hi + bhi), memo)
            return
        if kind == N.MUL:
            if ch[1].is_const() and ch[1].value > 0:
                c = ch[1].value
                alo, ahi, _, _ = self.facts(ch[0], memo)
                if ahi * c <= wmask:
                    self._refine(ch[0], (lo + c - 1) // c, hi // c, memo)
            return
        if kind == N.UDIV:
            if ch[1].is_const() and ch[1].value > 0:
                c = ch[1].value
                self._refine(ch[0], lo * c, min(wmask, hi * c + c - 1), memo)
            return
        if kind == N.ZEXT:
            cmask = (1 << ch[0].width) - 1
            if lo > cmask:
                raise _Empty
            self._refine(ch[0], lo, min(hi, cmask), memo)
            return
        if kind == N.SEXT:
            sign = 1 << (ch[0].width - 1)
            if hi < sign:
                self._refine(ch[0], lo, hi, memo)
            return
        if kind == N.EXTRACT:
            hi_bit, lo_bit = e.params
            if lo_bit == 0:
                clo, chi, _, _ = self.facts(ch[0], memo)
                if chi <= wmask:  # the extract is lossless here
                    self._refine(ch[0], lo, hi, memo)
            return
        if kind == N.CONCAT:
            lw = ch[1].width
            self._refine(ch[0], lo >> lw, hi >> lw, memo)
            if (lo >> lw) == (hi >> lw):  # high part pinned: bound the low part
                self._refine(ch[1], lo & ((1 << lw) - 1), hi & ((1 << lw) - 1), memo)
            return
        if kind == N.ITE:
            truth = self.bool_fact(ch[0], memo)
            if truth is not None:
                self._refine(ch[1] if truth else ch[2], lo, hi, memo)
                return
            tlo, thi, _, _ = self.facts(ch[1], memo)
            flo, fhi, _, _ = self.facts(ch[2], memo)
            # If one arm cannot produce a value in [lo, hi], the condition
            # is decided — the key step that keeps merge-produced ite
            # expressions analyzable.
            t_possible = not (thi < lo or tlo > hi)
            f_possible = not (fhi < lo or flo > hi)
            if t_possible and not f_possible:
                self._assert_bool(ch[0], True, memo)
                self._refine(ch[1], lo, hi, memo)
            elif f_possible and not t_possible:
                self._assert_bool(ch[0], False, memo)
                self._refine(ch[2], lo, hi, memo)
            elif not t_possible and not f_possible:
                raise _Empty
            return

    def _refine_bits(self, e: Expr, mask: int, val: int, memo) -> None:
        """Constrain known bits of a bitvector expression."""
        if not mask:
            return
        kind = e.kind
        w = e.width
        ch = e.children
        if kind == N.VAR:
            self._narrow_var(e.name, w, 0, (1 << w) - 1, mask, val)
            return
        if kind == N.CONST:
            if (e.value ^ val) & mask:
                raise _Empty
            return
        if kind == N.BVAND and ch[1].is_const():
            m = ch[1].value
            if val & mask & ~m:
                raise _Empty
            self._refine_bits(ch[0], mask & m, val & m, memo)
            return
        if kind == N.BVOR and ch[1].is_const():
            m = ch[1].value
            if mask & m & ~val:
                raise _Empty
            self._refine_bits(ch[0], mask & ~m, val & ~m, memo)
            return
        if kind == N.BVXOR and ch[1].is_const():
            m = ch[1].value
            self._refine_bits(ch[0], mask, (val ^ m) & mask, memo)
            return
        if kind == N.BVNOT:
            self._refine_bits(ch[0], mask, (~val) & mask & ((1 << w) - 1), memo)
            return
        if kind == N.ZEXT:
            cmask = (1 << ch[0].width) - 1
            if val & mask & ~cmask:
                raise _Empty
            self._refine_bits(ch[0], mask & cmask, val & cmask, memo)
            return
        if kind == N.EXTRACT:
            hi_bit, lo_bit = e.params
            self._refine_bits(ch[0], mask << lo_bit, val << lo_bit, memo)
            return
        if kind == N.CONCAT:
            lw = ch[1].width
            lmask = (1 << lw) - 1
            self._refine_bits(ch[1], mask & lmask, val & lmask, memo)
            self._refine_bits(ch[0], mask >> lw, val >> lw, memo)
            return
        if kind == N.SHL and ch[1].is_const():
            k = ch[1].value
            if k < w:
                if val & mask & ((1 << k) - 1):
                    raise _Empty
                self._refine_bits(ch[0], mask >> k, val >> k, memo)
            return
        if kind == N.LSHR and ch[1].is_const():
            k = ch[1].value
            if k < w:
                wmask = (1 << w) - 1
                self._refine_bits(ch[0], (mask << k) & wmask, (val << k) & wmask, memo)
            return
        if kind == N.ADD and ch[1].is_const():
            t = _trailing_known(mask)
            if t:
                tm = (1 << t) - 1
                self._refine_bits(ch[0], tm, (val - ch[1].value) & tm, memo)
            return
        if kind == N.ITE:
            truth = self.bool_fact(ch[0], memo)
            if truth is not None:
                self._refine_bits(ch[1] if truth else ch[2], mask, val, memo)
            return

    def _assert_bool(self, e: Expr, truth: bool, memo) -> None:
        """Absorb the fact that boolean expression ``e`` equals ``truth``."""
        kind = e.kind
        if kind == N.CONST:
            if bool(e.value) != truth:
                raise _Empty
            return
        if kind == N.VAR:
            known = self.bools.get(e.name)
            if known is None:
                self.bools[e.name] = truth
                self._changed.add(e.name)
                self._gen += 1
            elif known != truth:
                raise _Empty
            return
        ch = e.children
        if kind == N.NOT:
            self._assert_bool(ch[0], not truth, memo)
            return
        if kind == N.AND:
            if truth:
                self._assert_bool(ch[0], True, memo)
                self._assert_bool(ch[1], True, memo)
            else:
                a = self.bool_fact(ch[0], memo)
                b = self.bool_fact(ch[1], memo)
                if a is True:
                    self._assert_bool(ch[1], False, memo)
                elif b is True:
                    self._assert_bool(ch[0], False, memo)
            return
        if kind == N.OR:
            if not truth:
                self._assert_bool(ch[0], False, memo)
                self._assert_bool(ch[1], False, memo)
            else:
                a = self.bool_fact(ch[0], memo)
                b = self.bool_fact(ch[1], memo)
                if a is False:
                    self._assert_bool(ch[1], True, memo)
                elif b is False:
                    self._assert_bool(ch[0], True, memo)
            return
        if kind == N.XOR:
            a = self.bool_fact(ch[0], memo)
            b = self.bool_fact(ch[1], memo)
            if a is not None:
                self._assert_bool(ch[1], truth != a, memo)
            elif b is not None:
                self._assert_bool(ch[0], truth != b, memo)
            return
        if kind == N.ITE:
            cond = self.bool_fact(ch[0], memo)
            if cond is not None:
                self._assert_bool(ch[1] if cond else ch[2], truth, memo)
            return
        if kind not in (N.EQ, N.ULT, N.ULE, N.SLT, N.SLE) or not ch[0].is_bv():
            return
        known = self.bool_fact(e, memo)
        if known is not None:
            if known != truth:
                raise _Empty
            return
        a, b = ch
        if kind == N.EQ:
            if truth:
                alo, ahi, am, av = self.facts(a, memo)
                blo, bhi, bm, bv = self.facts(b, memo)
                lo, hi = max(alo, blo), min(ahi, bhi)
                if lo > hi:
                    raise _Empty
                self._refine(a, lo, hi, memo)
                self._refine(b, lo, hi, memo)
                mask, val = _merge_bits(am, av, bm, bv)
                self._refine_bits(a, mask, val, memo)
                self._refine_bits(b, mask, val, memo)
            else:
                # a != b: chip singleton endpoints off the other side.
                alo, ahi, _, _ = self.facts(a, memo)
                blo, bhi, _, _ = self.facts(b, memo)
                wmask = (1 << a.width) - 1
                if alo == ahi:
                    if blo == alo:
                        self._refine(b, blo + 1, bhi, memo)
                    elif bhi == alo:
                        self._refine(b, blo, bhi - 1, memo)
                if blo == bhi:
                    if alo == blo:
                        self._refine(a, alo + 1, ahi, memo)
                    elif ahi == blo:
                        self._refine(a, alo, min(ahi - 1, wmask), memo)
            return
        if kind in (N.SLT, N.SLE):
            return  # refutation via bool_fact only
        wmask = (1 << a.width) - 1
        if kind == N.ULT:
            if not truth:
                a, b, kind, truth = b, a, N.ULE, True
        elif kind == N.ULE:
            if not truth:
                a, b, kind, truth = b, a, N.ULT, True
        alo, _, _, _ = self.facts(a, memo)
        _, bhi, _, _ = self.facts(b, memo)
        if kind == N.ULT:
            if bhi == 0:
                raise _Empty
            self._refine(a, 0, bhi - 1, memo)
            self._refine(b, min(alo + 1, wmask), wmask, memo)
        else:  # ULE
            self._refine(a, 0, bhi, memo)
            self._refine(b, alo, wmask, memo)

    # -- decisions ----------------------------------------------------------

    def decide(self, group: list[Expr]) -> tuple[str, dict[str, int] | None]:
        """Decide a group whose constraints have all been absorbed."""
        if self.infeasible:
            return UNSAT, None
        memo: dict[int, tuple[int, object]] = {}
        try:
            for c in group:
                if self.bool_fact(c, memo) is False:
                    return UNSAT, None
        except _Empty:
            self.infeasible = True
            return UNSAT, None
        model = self._probe(group)
        if model is not None:
            return SAT, model
        return UNKNOWN, None

    def _probe(self, group: list[Expr]) -> dict[str, int] | None:
        """Evaluate a few deterministic candidate assignments (proves SAT)."""
        facts: dict[str, tuple[int, int, int, int]] = {}
        for name, node in self.vars.items():
            if node.is_bv():
                try:
                    facts[name] = self.var_facts(name, node.width)
                except _Empty:
                    return None

        def assignment(fill) -> dict[str, int]:
            model = {}
            for name, node in self.vars.items():
                if node.is_bool():
                    model[name] = 1 if self.bools.get(name) else 0
                    continue
                lo, hi, mask, val = facts[name]
                model[name] = fill(lo, hi, mask, val)
            return model

        candidates = [
            assignment(lambda lo, hi, m, v: lo),
            assignment(lambda lo, hi, m, v: hi),
            assignment(lambda lo, hi, m, v: min(max(ord("a"), lo), hi)),
            assignment(lambda lo, hi, m, v: min(max(1, lo), hi)),
            assignment(lambda lo, hi, m, v: (lo + hi) // 2),
            assignment(lambda lo, hi, m, v: v | (lo & ~m)),
        ]
        for model in candidates:
            try:
                if all(evaluate(c, model) for c in group):
                    return model
            except EvalError:
                continue
        return None


# ---------------------------------------------------------------------------
# Per-chain manager: environments keyed per independence-group signature,
# with a short LRU of per-prefix snapshots for incremental extension.
# ---------------------------------------------------------------------------


def group_signature(group: list[Expr]) -> frozenset[str]:
    """The independence-group signature: the group's variable-name union.

    The single definition both pools key on — the presolve environments
    and the incremental chain's persistent blasters must always agree so
    their reset rules can mirror each other.
    """
    return frozenset().union(*(c.variables for c in group)) if group else frozenset()


class PresolveManager:
    """Stateful pre-solve tier for one solver chain.

    Environments are keyed by group *signature* (the frozenset of variable
    names — the same key the incremental chain uses for its persistent
    blasters).  For each signature a short LRU of ``(constraint-set, env,
    verdict, model)`` snapshots is kept: a query whose constraint set
    extends a snapshot clones it and absorbs only the new constraints
    (``env_reuses``); an exact match returns the memoized verdict outright.

    Reset rules mirror the blaster-reset invariants: the chain drops a
    signature's snapshots whenever it resets that signature's blaster
    (timeout, clause overflow) and clears the pool on ``reset_blasters``.
    Resetting is always sound — environments only accelerate, never decide
    differently from a fresh build.
    """

    MAX_SIGNATURES = 128
    SNAPSHOTS_PER_SIG = 4

    __slots__ = ("_sigs", "env_reuses", "env_builds", "batch_rounds")

    def __init__(self) -> None:
        self._sigs: OrderedDict[
            frozenset[str],
            list[tuple[frozenset[int], PresolveEnv, str, dict[str, int] | None]],
        ] = OrderedDict()
        self.env_reuses = 0
        self.env_builds = 0
        self.batch_rounds = 0

    def check_group(
        self, group: list[Expr], sig: frozenset[str] | None = None
    ) -> tuple[str, dict[str, int] | None]:
        if sig is None:
            sig = group_signature(group)
        eids = frozenset(c.eid for c in group)
        snaps = self._sigs.get(sig)
        env: PresolveEnv | None = None
        if snaps is not None:
            self._sigs.move_to_end(sig)
            best = None
            for snap in snaps:
                if snap[0] == eids:
                    self.env_reuses += 1
                    verdict, model = snap[2], snap[3]
                    return verdict, dict(model) if model is not None else None
                if snap[0] < eids and (best is None or len(snap[0]) > len(best[0])):
                    best = snap
            if best is not None:
                env = best[1].clone()
                env.absorb([c for c in group if c.eid not in best[0]])
                self.env_reuses += 1
        if env is None:
            env = PresolveEnv()
            env.absorb(group)
            self.env_builds += 1
        verdict, model = env.decide(group)
        self.batch_rounds += env.batch_rounds
        env.batch_rounds = 0
        if snaps is None:
            snaps = []
            self._sigs[sig] = snaps
            if len(self._sigs) > self.MAX_SIGNATURES:
                self._sigs.popitem(last=False)
        snaps.append((eids, env, verdict, model))
        if len(snaps) > self.SNAPSHOTS_PER_SIG:
            snaps.pop(0)
        return verdict, dict(model) if model is not None else None

    def reset_signature(self, sig: frozenset[str]) -> None:
        self._sigs.pop(sig, None)

    def reset(self) -> None:
        self._sigs.clear()


# ---------------------------------------------------------------------------
# Solver-boundary structural simplifier (process-wide memo).
# ---------------------------------------------------------------------------

_REWRITE_MEMO: OrderedDict[tuple[int, ...], tuple[Expr, ...] | None] = OrderedDict()
_REWRITE_MEMO_MAX = 65536


def _binding_target(e: Expr) -> Expr | None:
    """The variable a ``lhs == const`` equality defines, if any."""
    if e.kind == N.VAR and e.is_bv():
        return e
    if e.kind == N.ZEXT and e.children[0].kind == N.VAR:
        return e.children[0]
    return None


def _simplify_uncached(group: list[Expr]) -> tuple[Expr, ...] | None:
    """Equality/constant propagation over one group; None = no change.

    Returns the blast-ready constraint tuple: substituted residual
    constraints plus one re-emitted defining equality per binding.  The
    result is logically *equivalent* to the input (same models over the
    same variables), so rewriting at the solver boundary preserves both
    verdicts and model completeness.  A returned ``(FALSE,)`` means the
    group folded to a contradiction.
    """
    bindings: dict[str, Expr] = {}
    var_nodes: dict[str, Expr] = {}
    pending = list(group)
    for _ in range(4):
        new: dict[str, Expr] = {}
        for c in pending:
            if c.kind != N.EQ:
                continue
            lhs, rhs = c.children
            if not lhs.is_bv():
                continue
            target = _binding_target(lhs)
            if target is not None and rhs.is_const():
                name = target.name
                if name in bindings or name in new:
                    continue
                if rhs.value >= (1 << target.width):
                    return (ops.FALSE,)
                new[name] = ops.bv(rhs.value, target.width)
                var_nodes[name] = target
            elif lhs.kind == N.VAR and rhs.kind == N.VAR and lhs.sort is rhs.sort:
                # Deterministic orientation: replace the structurally later
                # variable by the earlier one (skey order, like the smart
                # constructors), so the rewrite is interning-history free.
                rep, member = (lhs, rhs) if (lhs.skey, lhs.name) <= (rhs.skey, rhs.name) else (rhs, lhs)
                if member.name in bindings or member.name in new:
                    continue
                new[member.name] = rep
                var_nodes[member.name] = member
        if not new:
            break
        bindings.update(new)
        folded: list[Expr] = []
        for c in pending:
            c2 = substitute(c, new)
            if c2.is_false():
                return (ops.FALSE,)
            if not c2.is_true():
                folded.append(c2)
        pending = folded
    if not bindings:
        return None
    defs = tuple(
        ops.eq(var_nodes[name], repl) for name, repl in bindings.items()
    )
    return tuple(pending) + defs


def simplify_group(group: list[Expr]) -> tuple[Expr, ...] | None:
    """Memoized boundary rewrite; None when the group is already minimal.

    The memo is process-wide: the rewrite is a pure function of the group's
    constraint set, so it is shared by every chain in the process (and is
    deterministic across processes — it never consults interning history).
    """
    key = tuple(c.eid for c in group)
    if key in _REWRITE_MEMO:
        return _REWRITE_MEMO[key]
    out = _simplify_uncached(group)
    _REWRITE_MEMO[key] = out
    if len(_REWRITE_MEMO) > _REWRITE_MEMO_MAX:
        _REWRITE_MEMO.popitem(last=False)
    return out


def rewrite_stats() -> dict[str, int]:
    """Process-wide memo size (diagnostics)."""
    return {"memo_entries": len(_REWRITE_MEMO)}


def clear_rewrite_memo() -> None:
    """Drop the process-wide rewrite memo (tests only)."""
    _REWRITE_MEMO.clear()


def one_shot_check(conjuncts: list[Expr]) -> tuple[str, dict[str, int] | None]:
    """Stateless decision over a conjunction (the old ``quick_check`` API).

    Builds a fresh environment, absorbs every conjunct, and decides — a
    pure function of the constraint set, which is what the deterministic
    test-generation chain requires.
    """
    pending: list[Expr] = []
    for c in conjuncts:
        if c.is_false():
            return UNSAT, None
        if not c.is_true():
            pending.append(c)
    if not pending:
        return SAT, {}
    env = PresolveEnv()
    if not env.absorb(pending):
        return UNSAT, None
    return env.decide(pending)


__all__ = [
    "PresolveEnv",
    "PresolveManager",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "clear_rewrite_memo",
    "group_signature",
    "one_shot_check",
    "rewrite_stats",
    "set_batching",
    "simplify_group",
]
