"""Priority dispatch of path-prefix partitions (the parallel side).

The coordinator used to push every partition into the workers' shared
task queue up front, which froze dispatch order to FIFO split order.
:class:`PartitionScheduler` replaces that with a coordinator-local
priority heap scored over :class:`~repro.parallel.partition.Partition`
metadata; the shared queue is kept primed with only as many tasks as
there are workers, so the *next* task handed out is always the current
best-scored one — including partitions that arrive late via work
stealing.

The dispatch score (``corpus`` policy, lexicographic, lower first):

1. **corpus novelty** — partitions whose root block no stored test has
   ever covered first (the warm store's uncovered-block evidence: the
   cheapest route to coverage the whole system has never seen);
2. **prefix depth, shallowest first** — within a novelty class a
   shallow prefix roots the larger subtree, so it starts earlier;
3. the partition id, as the deterministic final tie.

Signals (2)–(3) are deliberately aligned with split order (under a DFS
split the oldest exported state is the shallowest), so when the corpus
has no discriminating evidence the policy degrades to FIFO instead of
to an arbitrary permutation — corpus guidance can only help, never
scramble.  The ``fifo`` policy scores by pid alone — exactly the old
behavior, kept as the ablation baseline
(``experiments.figures.sched_ablation``).

Victim selection for work stealing uses the same signals plus the **QCE
load** estimate (:meth:`~repro.qce.qce.QceAnalysis.qt_table`, heaviest
first): :meth:`pick_victim` targets the busy worker running the most
novel, heaviest, shallowest partition — the subtree with the most
remaining work, i.e. the one whose frontier is most worth splitting
across idle workers.  Victim choice only decides *who exports* frontier
states, never the explored path space, so the load heuristic is free to
be aggressive here while dispatch order stays FIFO-aligned.
"""

from __future__ import annotations

import heapq

from .prioritizer import _qt_bucket

# Bounds for the adaptive split fan-out.  The floor keeps at least a
# couple of partitions per worker (work stealing needs slack); the cap
# bounds split-phase cost — snapshot bytes scale with frontier size.
FACTOR_BASE = 4
FACTOR_MIN = 2
FACTOR_MAX = 16


def partition_score(part, corpus_covered: frozenset, policy: str = "corpus") -> tuple:
    """Comparable dispatch score for one partition (lower runs sooner)."""
    if policy == "fifo":
        return (part.pid,)
    if part.func is None:
        # Metadata-less partition (a stolen blob from an old-protocol
        # worker): neutral novelty, dispatch order falls to depth/pid.
        novelty = 1
    else:
        loc = (part.func, part.block)
        # Novel only when the store has evidence at all: an empty corpus
        # makes every root "novel", which must mean FIFO, not a shuffle.
        novelty = 0 if corpus_covered and loc not in corpus_covered else 1
    depth = part.prefix_len if part.prefix_len >= 0 else 0
    return (novelty, depth, part.pid)


class PartitionScheduler:
    """Coordinator-local priority queue over undispatched partitions."""

    def __init__(
        self,
        corpus_covered=frozenset(),
        qt_table=None,
        policy: str = "corpus",
    ):
        """``qt_table`` may be the dict itself or a zero-arg callable
        producing it — the callable is resolved only when a steal-victim
        choice first needs the load signal, so runs that never steal
        (the inline backend, steal-free process runs) never pay for the
        QCE analysis behind it."""
        if policy not in ("corpus", "fifo"):
            raise ValueError(f"unknown dispatch policy {policy!r}")
        self.corpus_covered = frozenset(corpus_covered)
        self._qt = qt_table
        self.policy = policy
        self._heap: list[tuple[tuple, int, object]] = []
        self._seq = 0

    @property
    def qt_table(self) -> dict:
        if callable(self._qt):
            self._qt = self._qt() or {}
        return self._qt or {}

    def score(self, part) -> tuple:
        return partition_score(part, self.corpus_covered, self.policy)

    def push(self, part) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.score(part), self._seq, part))

    def pop(self):
        """Best-scored pending partition, or None when drained."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def order(self, parts) -> list:
        """All partitions in dispatch order (the inline backend's plan)."""
        for part in parts:
            self.push(part)
        ordered = []
        while self._heap:
            ordered.append(self.pop())
        return ordered

    def victim_score(self, part) -> tuple:
        """Steal-target desirability of a *running* partition (lower =
        steal from it first): novel, then QCE-heaviest, then shallowest.

        The load term lives here and not in :meth:`score` on purpose —
        victim choice only decides who exports frontier states (any
        choice is sound), while dispatch order must degrade to FIFO when
        evidence ties, which a load term would scramble.
        """
        if self.policy == "fifo":
            return (part.pid,)
        dispatch = partition_score(part, self.corpus_covered, self.policy)
        loc = (part.func, part.block) if part.func is not None else None
        load = _qt_bucket(self.qt_table.get(loc, 0.0)) if loc else 0
        return (dispatch[0], -load, *dispatch[1:])

    def pick_victim(self, running: dict[int, object]) -> int:
        """Which busy worker to steal from: wid -> its running partition.

        The best victim-scored running partition marks the subtree most
        worth splitting (novel, heavy, shallow = large remaining
        frontier).  Ties (and the fifo policy) fall back to the lowest
        worker id, which is the pre-scheduler behavior.
        """
        if not running:
            raise ValueError("pick_victim with no busy workers")
        return min(
            running,
            key=lambda wid: (self.victim_score(running[wid]), wid)
            if running[wid] is not None
            else ((), wid),
        )

    def pending(self) -> list:
        """Undispatched partitions in dispatch order, without draining.

        Campaign checkpoints enumerate the queue through this — the heap
        stays intact, and the deterministic order keeps checkpoint
        records byte-stable for identical queue states.
        """
        return [item[2] for item in sorted(self._heap, key=lambda it: (it[0], it[1]))]

    def __len__(self) -> int:
        return len(self._heap)


def adaptive_partition_factor(store, program: str, base: int = FACTOR_BASE) -> int:
    """Split fan-out from the worker imbalance previous runs recorded.

    A balanced previous run (imbalance ~1.0) keeps the base factor; an
    imbalanced one (one worker did N× the mean path work) scales the
    fan-out up so the next run has more, smaller partitions to level
    with.  Without a store — or before any parallel run recorded an
    imbalance — the base factor is returned, which is exactly the old
    fixed default.
    """
    imbalance = None
    if store is not None:
        try:
            imbalance = store.last_parallel_imbalance(program)
        except Exception:
            imbalance = None
    if not imbalance or imbalance <= 0.0:
        return base
    return max(FACTOR_MIN, min(FACTOR_MAX, round(base * imbalance)))
