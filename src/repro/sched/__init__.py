"""repro.sched — the unified coverage/corpus-guided scheduler.

Every "what runs next" decision in the system goes through this package:

* **sequential search** — the ranking strategies in
  :mod:`repro.search.strategies` (``coverage``, ``topological``, and the
  DSM forwarding pick) are thin adapters over a shared
  :class:`Prioritizer` heap instead of bespoke argmin loops;
* **parallel dispatch** — the coordinator's task queue is a
  :class:`PartitionScheduler` priority queue scored by the same signal
  model over :class:`~repro.parallel.partition.Partition` metadata, and
  work-stealing victim selection routes through it;
* **adaptive splitting** — :func:`adaptive_partition_factor` picks the
  split fan-out from the worker imbalance observed by previous runs
  (recorded in the persistent store's run metadata).

The model: a :class:`Signal` maps a work item (a live
:class:`~repro.engine.state.SymState` or a partition's metadata) to a
comparable score, *lower = run sooner*.  A :class:`Prioritizer` composes
signals lexicographically into one key and maintains a lazily-rescored
heap over the registered items.  Signals available today:

* global coverage frontier (is the item's block uncovered *this run*?);
* stored corpus evidence (does any stored test cover the block? —
  :meth:`repro.store.db.ReproStore.covered_blocks`, indexed);
* QCE query-count estimates (:meth:`repro.qce.qce.QceAnalysis.qt_table`);
* path-prefix depth, pick counts, and CFG-topological order.

Scheduling invariants (enforced by ``tests/test_sched.py`` and the
``sched`` ablation figure):

* **neutrality in plain mode** — scheduling changes the *order* paths
  are explored, never the path space: 1-worker and N-worker plain-mode
  runs emit identical test multisets under any dispatch policy;
* **lower-bound heap law** — a registered item's stored key never
  exceeds its current key (signals may only worsen while an item waits),
  so lazy rescoring on pop always returns a true minimum;
* **bookkeeping balance** — every ``on_add`` is matched by exactly one
  ``on_remove`` (pick, merge replacement, or frontier export), so the
  heap's alive-set always mirrors the engine worklist.
"""

from .prioritizer import (
    CorpusNoveltySignal,
    CoverageFrontierSignal,
    DepthSignal,
    PickCountSignal,
    Prioritizer,
    QceLoadSignal,
    Signal,
    TopologicalSignal,
)
from .partition_sched import (
    PartitionScheduler,
    adaptive_partition_factor,
    partition_score,
)

__all__ = [
    "CorpusNoveltySignal",
    "CoverageFrontierSignal",
    "DepthSignal",
    "PartitionScheduler",
    "PickCountSignal",
    "Prioritizer",
    "QceLoadSignal",
    "Signal",
    "TopologicalSignal",
    "adaptive_partition_factor",
    "partition_score",
]
