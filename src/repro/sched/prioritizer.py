"""Comparable scheduling scores from pluggable signals, plus the heap.

A :class:`Signal` scores one work item; a :class:`Prioritizer` composes
several into a lexicographic key (lower = run sooner) and keeps the
registered items in a binary heap with *lazy rescoring*: keys are
computed at registration time, and a popped minimum is re-checked against
its current key before it is trusted.

Why lazy rescoring is sound here: every dynamic signal in this module is
**monotone** while an item sits in the worklist — run coverage only
grows (``CoverageFrontierSignal`` can flip 0→1, never back), pick counts
only grow, and the corpus/QCE/depth/topological signals are static for a
resident state.  A stored key is therefore always a *lower bound* on the
current key, which is exactly the invariant a lazy heap needs: the top
entry either verifies (it is the true minimum) or is pushed back with
its corrected, larger key.  Custom signals must preserve this law — a
signal whose score can *improve* for a waiting item would make the heap
return non-minima (still safe, merely suboptimal, but it voids the
``test_sched`` heap-law test).
"""

from __future__ import annotations

import heapq
from collections import Counter


class Signal:
    """One scheduling signal: ``score(item, engine)`` — lower runs sooner.

    ``item`` is a live :class:`~repro.engine.state.SymState` for search
    scheduling; partition dispatch uses :func:`partition_score` directly
    (partition metadata is a frozen snapshot, not a live state).
    Scores must be mutually comparable across calls (numbers or
    homogeneous tuples) and must never *decrease* while the item stays
    registered (see the module docstring).
    """

    name = "signal"

    def score(self, state, engine):
        raise NotImplementedError


class CoverageFrontierSignal(Signal):
    """0 when the state's current block is uncovered this run, else 1.

    The global coverage frontier: states about to execute new code win
    outright over states re-walking covered blocks.
    """

    name = "coverage-frontier"

    def score(self, state, engine):
        frame = state.top
        return 0 if (frame.func, frame.block) not in engine.coverage.covered else 1


class CorpusNoveltySignal(Signal):
    """0 when no stored corpus test has ever covered the current block.

    Cross-run evidence from :mod:`repro.store`: a block absent from the
    corpus coverage index is novel across *every* recorded run, not just
    this one, so states heading there are the cheapest route to new
    coverage.  Engines without a store report an empty corpus set and
    the signal is neutral (scores 0 for everything).
    """

    name = "corpus-novelty"

    def score(self, state, engine):
        corpus = getattr(engine, "corpus_covered", None)
        if not corpus:
            return 0
        frame = state.top
        return 0 if (frame.func, frame.block) not in corpus else 1


class PickCountSignal(Signal):
    """How often this location has already been picked (shared counter).

    De-prioritizes burning the budget on extra unrollings of a loop that
    has been serviced many times — KLEE's coverage-optimized searcher's
    second criterion.  The counter object is shared with (and bumped by)
    the owning strategy, which is what makes resident keys go stale; the
    heap's lazy rescoring absorbs that.
    """

    name = "pick-count"

    def __init__(self, counts: Counter):
        self.counts = counts

    def score(self, state, engine):
        frame = state.top
        return self.counts[(frame.func, frame.block)]


class QceLoadSignal(Signal):
    """Bucketed QCE query-count estimate Qt at the state's location.

    ``prefer='light'`` runs cheap states first (few estimated remaining
    queries — complete paths quickly); ``prefer='heavy'`` runs expensive
    subtrees first (longest-processing-time order, which is what the
    partition scheduler wants to minimize makespan).  The raw Qt is
    log-bucketed so the signal only discriminates order-of-magnitude
    differences and leaves finer ties to later signals.
    """

    name = "qce-load"

    def __init__(self, qt_table: dict[tuple[str, str], float], prefer: str = "light"):
        self.qt_table = qt_table
        if prefer not in ("light", "heavy"):
            raise ValueError(f"prefer must be 'light' or 'heavy', not {prefer!r}")
        self.sign = 1 if prefer == "light" else -1

    def score(self, state, engine):
        frame = state.top
        return self.sign * _qt_bucket(self.qt_table.get((frame.func, frame.block), 0.0))


def _qt_bucket(qt: float) -> int:
    """Log2 bucket of a Qt estimate (0 for <=1 expected queries)."""
    bucket = 0
    value = qt
    while value > 1.0 and bucket < 62:
        value /= 2.0
        bucket += 1
    return bucket


class DepthSignal(Signal):
    """Path-prefix depth (|pc|); ``prefer='deep'`` explores deepest first."""

    name = "depth"

    def __init__(self, prefer: str = "deep"):
        if prefer not in ("deep", "shallow"):
            raise ValueError(f"prefer must be 'deep' or 'shallow', not {prefer!r}")
        self.sign = -1 if prefer == "deep" else 1

    def score(self, state, engine):
        return self.sign * len(state.pc)


class TopologicalSignal(Signal):
    """Static state merging's order: the full CFG-topological key."""

    name = "topological"

    def score(self, state, engine):
        from ..search.strategies import topological_key  # local: avoid cycle

        return topological_key(state, engine)


class Prioritizer:
    """A lexicographic composition of signals over a lazily-rescored heap.

    Two usage modes, matching how strategies are exercised:

    * **registered** — the engine mirrors its worklist through
      ``add``/``remove`` (the strategy ``on_add``/``on_remove`` hooks) and
      ``select`` answers from the heap: signals are scored once per
      residency (at ``add``, re-scored only when stale) instead of once
      per state per pick.  The final state→index mapping is still a
      linear identity scan — the worklist is a plain list — so a pick is
      O(n) in cheap pointer compares but no longer O(n · signals) in
      signal evaluations;
    * **ad hoc** — ``select`` on a worklist that was never registered
      (direct strategy calls in tests, subset ranking) falls back to a
      linear argmin over fresh keys.  ``select_among``/``select_worst``
      are always linear: they serve rare paths (DSM forwarding subsets,
      steal-victim choice) where heap bookkeeping would cost more than
      it saves.

    ``rng`` (optional) supplies a tiebreak drawn once per registration —
    frozen per heap entry so rescoring compares stably — mirroring the
    randomized tie-breaking the coverage strategy always had.
    """

    def __init__(self, signals, rng=None):
        self.signals = tuple(signals)
        self.rng = rng
        # Heap entries: [key, tiebreak, seq, sid, version].  ``version``
        # invalidates entries from a previous residency of the same sid.
        self._heap: list[list] = []
        self._alive: dict[int, object] = {}
        self._version: dict[int, int] = {}
        self._seq = 0
        self.picks = 0
        self._rescores = 0

    # -- bookkeeping ---------------------------------------------------------

    def key(self, state, engine) -> tuple:
        return tuple(signal.score(state, engine) for signal in self.signals)

    def _tiebreak(self) -> float:
        return self.rng.random() if self.rng is not None else 0.0

    def add(self, state, engine) -> None:
        sid = state.sid
        version = self._version.get(sid, 0) + 1
        self._version[sid] = version
        self._alive[sid] = state
        self._seq += 1
        heapq.heappush(
            self._heap,
            [self.key(state, engine), self._tiebreak(), self._seq, sid, version],
        )

    def remove(self, state) -> None:
        self._alive.pop(state.sid, None)
        if not self._alive:
            # Worklist drained (end of run or full frontier export): drop
            # every stale entry at once instead of popping them one by one.
            self._heap.clear()
            self._version.clear()

    def __len__(self) -> int:
        return len(self._alive)

    def take_rescores(self) -> int:
        """Rescore count since the last call (flushed into EngineStats)."""
        count = self._rescores
        self._rescores = 0
        return count

    # -- selection -----------------------------------------------------------

    def select(self, worklist, engine) -> int:
        """Index of the best worklist state (heap path when registered)."""
        if len(self._alive) != len(worklist):
            return self._scan(worklist, engine)
        while self._heap:
            entry = self._heap[0]
            key, _tb, _seq, sid, version = entry
            state = self._alive.get(sid)
            if state is None or self._version.get(sid) != version:
                heapq.heappop(self._heap)
                continue
            fresh = self.key(state, engine)
            if fresh != key:
                # Stale lower bound: correct it in place and re-sift.
                entry[0] = fresh
                heapq.heapreplace(self._heap, entry)
                self._rescores += 1
                continue
            for index, candidate in enumerate(worklist):
                if candidate is state:
                    self.picks += 1
                    return index
            # Foreign worklist (same length by coincidence): fall back.
            return self._scan(worklist, engine)
        return self._scan(worklist, engine)

    def select_among(self, worklist, indices, engine) -> int:
        """Best index among a subset (linear; used for DSM forwarding)."""
        best = None
        best_key = None
        for index in indices:
            key = (self.key(worklist[index], engine), self._tiebreak(), index)
            if best_key is None or key < best_key:
                best_key, best = key, index
        if best is None:
            raise ValueError("select_among over an empty subset")
        return best

    def select_worst(self, worklist, engine) -> int:
        """Index of the *lowest-priority* state (steal-victim choice)."""
        worst = 0
        worst_key = None
        for index, state in enumerate(worklist):
            key = (self.key(state, engine), self._tiebreak(), index)
            if worst_key is None or key > worst_key:
                worst_key, worst = key, index
        return worst

    def _scan(self, worklist, engine) -> int:
        best = 0
        best_key = None
        for index, state in enumerate(worklist):
            key = (self.key(state, engine), self._tiebreak(), index)
            if best_key is None or key < best_key:
                best_key, best = key, index
        return best
