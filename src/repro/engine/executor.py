"""The symbolic execution engine (the paper's Algorithm 1).

A worklist of :class:`SymState` is driven by a pluggable ``pickNext``
(search strategy), a feasibility checker ``follow`` (solver queries at
branches), and a similarity relation ``~`` deciding merges when states
meet at the same location.  Static state merging (SSM) is this algorithm
with a topological strategy; dynamic state merging (DSM, Algorithm 2)
wraps any driving strategy and fast-forwards states that are similar to a
recent predecessor of another worklist state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.liveness import live_at, live_in_sets
from ..env.argv import ArgvSpec
from ..expr import ops
from ..expr.nodes import Expr
from ..lang.cfg import (
    IAssert,
    IAssign,
    ICall,
    ILoad,
    IPutc,
    IStore,
    MemRef,
    Module,
    TBr,
    THalt,
    TJmp,
    TRet,
)
from ..lang.compile import compile_block
from ..lang.types import Array2DType, ArrayType
from ..qce.qce import QceAnalysis, QceParams, analyze_module
from ..solver.portfolio import IncrementalChain, SolverChain
from .merge import merge_states
from .similarity import (
    LiveVarSimilarity,
    MergeAlways,
    MergeNever,
    QceFullSimilarity,
    QceSimilarity,
)
from .state import ArrayBinding, Frame, Region, SymState
from .stats import CoverageTracker, EngineStats
from .testgen import TestCase, TestSuite, make_test_case

ARGV_KEY = (0, "global", "$argv")


@dataclass
class EngineConfig:
    """Knobs for one symbolic execution run.

    merging: 'none' (plain), 'static' (merge at meets; use with the
        topological strategy for SSM), or 'dynamic' (DSM, Algorithm 2).
    similarity: 'qce' (paper Eq. 1) | 'qce-full' (Eq. 7 with ite costs) |
        'always' | 'never' | 'live' — the ~ relation.
    strategy: 'dfs' | 'bfs' | 'random' | 'coverage' | 'topological'.
    """

    merging: str = "none"
    similarity: str = "qce"
    strategy: str = "dfs"
    qce_params: QceParams = field(default_factory=QceParams)
    dsm_delta: int = 8
    max_steps: int | None = None
    time_budget: float | None = None
    max_queries: int | None = None
    track_exact_paths: bool = False
    generate_tests: bool = True
    # Derive test inputs from a history-free solve of the pc (a pure
    # function of the path prefix), so partitioned runs emit the same test
    # set as sequential ones.  See repro.engine.testgen.deterministic_model.
    testgen_deterministic: bool = True
    keep_terminal_states: bool = False
    zeta: float = 2.0  # ite cost multiplier for similarity='qce-full' (Eq. 7)
    seed: int = 0
    solver_cache: bool = True
    solver_fastpath: bool = True
    solver_incremental: bool = True
    preconditions: tuple[Expr, ...] = ()
    # Persistent cross-run store (repro.store).  ``store_path`` names the
    # SQLite file; the engine opens it as the single writer unless
    # ``store_readonly`` (parallel workers: lookups local, inserts shipped
    # to the coordinator).  ``warm_start`` seeds the in-memory query cache
    # from the store's corpus models and UNSAT cores at construction.
    store_path: str | None = None
    store_readonly: bool = False
    warm_start: bool = True
    # Block-lowering tier (repro.lang.compile): compile the straight-line
    # prefix of hot blocks to Python closures.  Observation-equivalent by
    # construction (compiled code bails to the interpreter at the first
    # symbolic operand); the knob exists for ablation and debugging.
    lowering_enabled: bool = True
    # Blocks become compile candidates after this many executions.
    lowering_threshold: int = 8


class Engine:
    """Symbolic executor over a compiled module with a symbolic argv."""

    def __init__(
        self,
        module: Module,
        spec: ArgvSpec,
        config: EngineConfig | None = None,
        store=None,
        program: str | None = None,
    ):
        self.module = module
        self.spec = spec
        self.config = config or EngineConfig()
        self.program = program or "<module>"
        chain_cls = IncrementalChain if self.config.solver_incremental else SolverChain
        self.solver = chain_cls(
            use_cache=self.config.solver_cache, use_fastpath=self.config.solver_fastpath
        )
        self.stats = EngineStats()
        self._init_store(store)
        self.coverage = CoverageTracker()
        self.coverage.register_module(module)
        self.tests = TestSuite(spec)
        self.worklist: list[SymState] = []
        self._loc_index: dict[tuple, list[SymState]] = {}
        self._sid_counter = 0
        self._live_cache: dict[str, dict[str, frozenset[str]]] = {}
        self._live_at_cache: dict[tuple[str, str, int], frozenset[str]] = {}
        self._rpo_cache: dict[str, dict[str, int]] = {}
        # True when the last explore() exited via its interrupt hook.
        self.interrupted = False
        # (multiplicity, exact path count) per terminal state, when tracking.
        self.exact_path_samples: list[tuple[int, int]] = []
        # Terminal states, retained only when config.keep_terminal_states.
        self.terminal_states: list[SymState] = []
        # Lowering tier: (func, block) -> CompiledBlock, or None when the
        # block has no compilable prefix.  Candidates are picked by heat —
        # the strategy's pick counter when it keeps one, else a local count.
        self._compiled: dict[tuple[str, str], object] = {}
        self._block_heat: dict[tuple[str, str], int] = {}

        self.qce: QceAnalysis | None = None
        if self.config.similarity in ("qce", "qce-full"):
            self.qce = analyze_module(module, self.config.qce_params)
        self.similarity = self._make_similarity()

        from ..search.strategies import make_strategy  # local import: avoid cycle
        from ..search.dsm import DsmStrategy

        base = make_strategy(self.config.strategy, self.config.seed)
        if self.config.merging == "dynamic":
            self.strategy = DsmStrategy(base, self)
        else:
            self.strategy = base
        # Prioritized strategies (repro.sched) score states against this
        # engine's coverage/corpus/QCE context inside on_add.
        self.strategy.bind(self)

    # -- construction helpers ----------------------------------------------------

    def _init_store(self, store) -> None:
        """Attach the persistent store (repro.store), if configured.

        An injected ``store`` wins over ``config.store_path``.  When a
        store is present the solver chain gains a persistent cache tier,
        and (unless ``warm_start`` is off) the in-memory query cache is
        seeded with the corpus' models and stored UNSAT cores — verdict-
        neutral evidence that lets this run answer queries without
        re-solving what earlier runs already solved.
        """
        self.store = store
        self._store_tier = None
        self._store_committed = False
        self._owns_store = False
        # Set when a commit degraded because the store stayed locked.
        self.store_warning: str | None = None
        # Blocks any stored corpus test has covered — the scheduler's
        # cross-run novelty signal (repro.sched.CorpusNoveltySignal).
        # Empty without a store, so the signal is neutral.
        self.corpus_covered: frozenset = frozenset()
        if self.store is None and self.config.store_path:
            from ..store import open_store  # local import: engine stays store-free otherwise

            self.store = open_store(
                self.config.store_path, readonly=self.config.store_readonly
            )
            self._owns_store = self.store is not None
        if self.store is None and not self.config.store_path:
            return
        from ..store import PersistentTier, seed_query_cache

        self._store_tier = PersistentTier(self.store, program=self.program)
        self.solver.persistent = self._store_tier
        if self.store is not None and self.config.warm_start:
            from ..store import corpus_covered_blocks

            self.corpus_covered = corpus_covered_blocks(self.store, self.program)
        if (
            self.store is not None
            and self.config.warm_start
            and self.config.solver_cache
        ):
            models, cores = seed_query_cache(
                self.store, self.solver.cache, self.program, self.spec
            )
            self.stats.warm_models_seeded = models
            self.stats.warm_cores_seeded = cores

    def commit_to_store(self) -> int | None:
        """Single-writer commit of this run's artifacts; returns the run id.

        No-op unless this engine owns a writable store.  Writes the run
        metadata row, flushes the solver tier's buffered constraint
        inserts and UNSAT cores, and records the generated tests (with
        replayed coverage bitmaps) into the corpus.  Idempotent per run.

        The commit is one store transaction, retried with bounded
        backoff when another process holds the SQLite write lock.  If
        the store stays locked past the retry budget the run degrades
        instead of failing: the results in memory are untouched,
        ``self.store_warning`` names what was lost (only the cross-run
        cache/corpus update), and the method returns None.
        """
        if (
            self.store is None
            or self.store.readonly
            or self._store_tier is None
            or self._store_committed
        ):
            return None
        import sqlite3

        from ..store import (
            apply_payload,
            is_locked_error,
            record_tests,
            retry_locked,
            spec_fingerprint,
        )

        self._store_committed = True
        solver_stats = self.solver.stats
        store = self.store
        # Drain the tier buffer once, outside the retried closure: a
        # rolled-back attempt must not lose it, a retry not re-drain it.
        payload = self._store_tier.export_pending()

        def commit() -> int:
            with store.transaction():
                run_id = store.record_run(
                    self.program,
                    spec_fingerprint(self.spec),
                    mode=(
                        f"{self.config.merging}/{self.config.similarity}/"
                        f"{self.config.strategy}"
                    ),
                    wall_time=self.stats.wall_time,
                    queries=solver_stats.queries,
                    sat_solver_runs=solver_stats.sat_solver_runs,
                    store_hits=solver_stats.store_hits,
                    cost_units=solver_stats.cost_units,
                    paths=self.stats.paths_completed,
                    tests=self.stats.tests_generated,
                    stats=self.stats.snapshot(),
                )
                if payload:
                    apply_payload(store, payload, run_id=run_id)
                record_tests(
                    store, self.module, self.program, self.spec,
                    self.tests.cases, run_id,
                )
                return run_id

        try:
            run_id = retry_locked(commit)
        except sqlite3.OperationalError as exc:
            if not is_locked_error(exc):
                raise
            self.store_warning = (
                f"store commit skipped: {self.config.store_path!r} stayed "
                f"locked past the retry budget ({exc}); run results are "
                "complete, only the cross-run cache/corpus update was lost"
            )
            run_id = None
        self.close_store()
        return run_id

    def close_store(self) -> None:
        """Release the store connection if this engine opened it.

        Injected stores belong to their caller and are left open.  After
        closing, the solver's persistent tier degrades to buffer-only
        (every lookup misses) rather than touching a dead connection.
        """
        if self.store is None or not self._owns_store:
            return
        self.store.close()
        self.store = None
        self._owns_store = False
        if self._store_tier is not None:
            self._store_tier.store = None
            self._store_tier.writable = False

    def export_store_payload(self) -> dict | None:
        """This engine's buffered store inserts, for a remote single writer.

        The worker side of the parallel wire protocol: a read-only engine
        cannot commit, so its tier's pending constraint rows and cores are
        exported (and cleared) for the coordinator to apply.
        """
        if self._store_tier is None:
            return None
        return self._store_tier.export_pending()

    def _make_similarity(self):
        kind = self.config.similarity
        if kind == "never":
            return MergeNever()
        if kind == "always":
            return MergeAlways()
        if kind == "live":
            return LiveVarSimilarity(self._frame_live_sets)
        if kind == "qce":
            assert self.qce is not None
            return QceSimilarity(self.qce)
        if kind == "qce-full":
            assert self.qce is not None
            return QceFullSimilarity(self.qce, self.config.zeta)
        raise ValueError(f"unknown similarity {kind!r}")

    def _fresh_sid(self) -> int:
        self._sid_counter += 1
        return self._sid_counter

    def rpo_index(self, func: str) -> dict[str, int]:
        cached = self._rpo_cache.get(func)
        if cached is None:
            cached = self.module.function(func).rpo_index()
            self._rpo_cache[func] = cached
        return cached

    # -- liveness oracle ------------------------------------------------------------

    def _live_in(self, func: str) -> dict[str, frozenset[str]]:
        cached = self._live_cache.get(func)
        if cached is None:
            cached = live_in_sets(self.module.function(func))
            self._live_cache[func] = cached
        return cached

    def live_scalars_at(self, func: str, block: str, idx: int) -> frozenset[str]:
        if idx == 0:
            return self._live_in(func)[block]
        key = (func, block, idx)
        cached = self._live_at_cache.get(key)
        if cached is None:
            cached = live_at(self.module.function(func), block, idx, self._live_in(func))
            self._live_at_cache[key] = cached
        return cached

    def _frame_live_sets(self, state: SymState) -> list[frozenset[str]]:
        return [self.live_scalars_at(f.func, f.block, f.idx) for f in state.frames]

    # -- initial state ----------------------------------------------------------------

    def make_initial_state(self) -> SymState:
        state = SymState(self._fresh_sid())
        for name, (gtype, init) in self.module.globals.items():
            if isinstance(gtype, ArrayType):
                cells = _init_cells(gtype.size or 0, gtype.element.width, init)
                state.regions[(0, "global", name)] = Region(cells, None, gtype.element.width)
            elif isinstance(gtype, Array2DType):
                size = (gtype.rows or 0) * (gtype.cols or 0)
                cells = _init_cells(size, gtype.element.width, None)
                state.regions[(0, "global", name)] = Region(
                    cells, gtype.cols, gtype.element.width
                )
            else:
                state.globals_store[name] = ops.bv(int(init or 0), gtype.width)
        state.regions[ARGV_KEY] = Region(self.spec.build_cells(), self.spec.cols, 8)
        if self.spec.stdin_len:
            stdin_key = (0, "global", "g$__stdin")
            if stdin_key not in state.regions:
                raise ValueError("program compiled without the stdio prelude")
            state.regions[stdin_key] = Region(self.spec.stdin_cells(), None, 8)
            state.globals_store["g$__stdin_len"] = self.spec.stdin_length_expr()

        main = self.module.function("main")
        store: dict[str, Expr] = {}
        arrays: dict[str, ArrayBinding] = {}
        for pname, ptype in main.params:
            if isinstance(ptype, Array2DType):
                arrays[pname] = ArrayBinding(ARGV_KEY)
            elif isinstance(ptype, ArrayType):
                raise ValueError("main's array parameter must be 2-D (argv)")
            else:
                store[pname] = ops.bv(self.spec.argc, ptype.width)
        frame = Frame(main.name, main.entry, 0, store, arrays, None, depth=1)
        state.frames = [frame]
        self._alloc_local_arrays(state, main, depth=1)
        state.pc = tuple(self.config.preconditions) + tuple(
            self.spec.stdin_preconditions()
        )
        if self.config.track_exact_paths:
            state.exact_pcs = (state.pc,)
        return state

    def _alloc_local_arrays(self, state: SymState, fn, depth: int) -> None:
        param_names = {p for p, _ in fn.params}
        inits = getattr(fn, "array_inits", {})
        for vname, vtype in fn.var_types.items():
            if vname in param_names:
                continue
            if isinstance(vtype, ArrayType):
                cells = _init_cells(vtype.size or 0, vtype.element.width, inits.get(vname))
                key = (depth, fn.name, vname)
                state.regions[key] = Region(cells, None, vtype.element.width)
                state.frames[-1].arrays[vname] = ArrayBinding(key)
            elif isinstance(vtype, Array2DType):
                size = (vtype.rows or 0) * (vtype.cols or 0)
                key = (depth, fn.name, vname)
                state.regions[key] = Region(
                    _init_cells(size, vtype.element.width, None), vtype.cols, vtype.element.width
                )
                state.frames[-1].arrays[vname] = ArrayBinding(key)

    # -- main loop ----------------------------------------------------------------------
    #
    # ``run()`` is the sequential entry point; it is exactly the 1-worker
    # special case of the partitioned code path: seed states, then
    # ``explore()`` until the frontier drains.  The parallel subsystem
    # (repro.parallel) drives the same loop with restored snapshot states
    # and an ``interrupt`` hook at partition boundaries.

    def run(self) -> EngineStats:
        """Explore until the worklist empties or a budget trips."""
        self.seed_states([self.make_initial_state()])
        stats = self.explore()
        self.commit_to_store()
        return stats

    def seed_states(self, states: list[SymState]) -> None:
        """Add externally produced states (initial or restored partitions).

        Seeds never try to merge: partition roots are pairwise disjoint by
        construction, and the initial state has nothing to merge with.
        """
        # Partition boundary: strategies may reset per-partition state
        # (RandomStrategy reseeds its stream from the prefix here).
        self.strategy.on_seed(states)
        for state in states:
            if state.halted:
                self._finalize(state)
            else:
                self._add_state(state, try_merge=False)

    def explore(self, interrupt=None) -> EngineStats:
        """Drive the worklist until it drains, a budget trips, or
        ``interrupt(engine)`` returns True (partition-boundary hook: the
        worklist is left intact, so exploration can resume or the frontier
        can be exported for work stealing)."""
        start = time.perf_counter()
        cpu_start = time.process_time()
        self.interrupted = False
        while self.worklist:
            if self._budget_exhausted(start):
                self.stats.timed_out = True
                break
            if interrupt is not None and interrupt(self):
                self.interrupted = True
                break
            state = self._pick_next()
            successors = self.step(state)
            for succ in successors:
                if succ.halted:
                    self._finalize(succ)
                else:
                    self._add_state(succ, try_merge=self.config.merging != "none")
        self.stats.wall_time += time.perf_counter() - start
        self.stats.cpu_time += time.process_time() - cpu_start
        self._sync_solver_stats()
        return self.stats

    def _sync_solver_stats(self) -> None:
        solver_stats = self.solver.stats
        self.stats.solver_assumption_probes = solver_stats.assumption_probes
        self.stats.solver_incremental_reuses = solver_stats.incremental_reuses
        self.stats.solver_clauses_retained = solver_stats.clauses_retained
        self.stats.solver_clauses_forgotten = solver_stats.clauses_forgotten
        self.stats.solver_cache_hits = solver_stats.cache_hits
        self.stats.solver_cache_misses = solver_stats.cache_misses
        self.stats.solver_store_hits = solver_stats.store_hits
        self.stats.solver_store_misses = solver_stats.store_misses
        self.stats.solver_store_inserts = solver_stats.store_inserts
        self.stats.solver_unsat_cores = solver_stats.unsat_cores
        self.stats.solver_fastpath_hits = solver_stats.fastpath_hits
        self.stats.solver_presolve_hits_sat = solver_stats.presolve_hits_sat
        self.stats.solver_presolve_hits_unsat = solver_stats.presolve_hits_unsat
        self.stats.solver_presolve_rewrites = solver_stats.presolve_rewrites
        self.stats.solver_presolve_env_reuses = solver_stats.presolve_env_reuses

    def export_frontier(self, max_states: int) -> list[SymState]:
        """Remove and return up to ``max_states`` worklist states.

        Victim choice is delegated to the strategy (``steal_pick``), which
        picks states it would explore *last* — for DFS the oldest entries,
        i.e. the largest pending subtrees.  The exported states, with the
        remaining worklist, still partition this engine's search space.
        """
        if max_states >= len(self.worklist):
            # Full drain: victim ordering is meaningless, skip the
            # per-state steal_pick (quadratic for ranking strategies).
            exported = list(self.worklist)
            for state in exported:
                self._index_remove(state)
                self.strategy.on_remove(state)
            self.worklist.clear()
            return exported
        exported = []
        while self.worklist and len(exported) < max_states:
            idx = self.strategy.steal_pick(self.worklist, self)
            state = self.worklist.pop(idx)
            self._index_remove(state)
            self.strategy.on_remove(state)
            exported.append(state)
        return exported

    def _budget_exhausted(self, start: float) -> bool:
        cfg = self.config
        if cfg.max_steps is not None and self.stats.blocks_executed >= cfg.max_steps:
            return True
        # time_budget is cumulative across explore() resumptions (the
        # already-banked wall_time plus this call's elapsed time), so an
        # interrupt/resume cycle cannot extend the budget.
        if cfg.time_budget is not None and (
            self.stats.wall_time + time.perf_counter() - start > cfg.time_budget
        ):
            return True
        if cfg.max_queries is not None and self.solver.stats.queries >= cfg.max_queries:
            return True
        return False

    # -- worklist ---------------------------------------------------------------------------

    def _pick_next(self) -> SymState:
        idx = self.strategy.pick(self.worklist, self)
        state = self.worklist.pop(idx)
        self._index_remove(state)
        self.strategy.on_remove(state)
        return state

    def _add_state(self, state: SymState, try_merge: bool) -> None:
        if try_merge:
            merged = self._try_merge(state)
            if merged is not None:
                return
        self.worklist.append(state)
        self._loc_index.setdefault(state.loc_key(), []).append(state)
        self.strategy.on_add(state)
        self.stats.max_worklist = max(self.stats.max_worklist, len(self.worklist))

    def _index_remove(self, state: SymState) -> None:
        bucket = self._loc_index.get(state.loc_key())
        if bucket is not None:
            try:
                bucket.remove(state)
            except ValueError:
                pass
            if not bucket:
                del self._loc_index[state.loc_key()]

    def _try_merge(self, new_state: SymState) -> SymState | None:
        """Algorithm 1 lines 17–22: merge into a matching worklist state."""
        bucket = self._loc_index.get(new_state.loc_key())
        if not bucket:
            return None
        for candidate in bucket:
            if not self.similarity.mergeable(new_state, candidate):
                continue
            merged = merge_states(
                new_state, candidate, self._fresh_sid(), live_scalars=self._merge_live_oracle
            )
            if merged is None:
                continue
            # Replace the candidate with the merged state in place.
            self.worklist.remove(candidate)
            self._index_remove(candidate)
            self.strategy.on_remove(candidate)
            self.stats.merges += 1
            ff_sids = getattr(self.strategy, "ff_sids", None)
            if ff_sids is not None and (new_state.sid in ff_sids or candidate.sid in ff_sids):
                self.stats.dsm_ff_merges += 1
            self.stats.max_multiplicity = max(self.stats.max_multiplicity, merged.multiplicity)
            self._add_state(merged, try_merge=False)
            return merged
        return None

    def _merge_live_oracle(self, frame_index: int, state: SymState) -> frozenset[str]:
        frame = state.frames[frame_index]
        return self.live_scalars_at(frame.func, frame.block, frame.idx)

    # -- single step --------------------------------------------------------------------------

    def step(self, state: SymState) -> list[SymState]:
        """Execute until the end of the current block / call / halt."""
        frame = state.top
        fn = self.module.function(frame.func)
        block = fn.blocks[frame.block]
        self.coverage.touch(frame.func, frame.block)
        self.stats.blocks_executed += 1
        state.steps += 1

        instrs = block.instrs
        if self.config.lowering_enabled and frame.idx == 0 and instrs:
            compiled = self._lookup_compiled(frame.func, frame.block, block)
            if compiled is not None:
                ran = compiled.run(state)
                if ran:
                    frame.idx = ran
                    self.stats.instructions_executed += ran
                    self.stats.compiled_steps += ran
                if ran < compiled.prefix_len:
                    self.stats.compiled_bailouts += 1
        while frame.idx < len(instrs):
            instr = instrs[frame.idx]
            self.stats.instructions_executed += 1
            frame.idx += 1
            if isinstance(instr, IAssign):
                state.assign(instr.dst, state.eval_expr(instr.expr))
            elif isinstance(instr, ILoad):
                if not self._exec_load(state, instr):
                    return []
            elif isinstance(instr, IStore):
                if not self._exec_store(state, instr):
                    return []
            elif isinstance(instr, IPutc):
                state.output = state.output + (state.eval_expr(instr.value),)
            elif isinstance(instr, IAssert):
                if not self._exec_assert(state, instr):
                    return []
            elif isinstance(instr, ICall):
                self._exec_call(state, instr)
                return self._after_move(state)
            else:
                raise RuntimeError(f"unknown instruction {instr!r}")

        term = block.term
        if isinstance(term, TJmp):
            frame.block = term.label
            frame.idx = 0
            return self._after_move(state)
        if isinstance(term, TBr):
            return self._exec_branch(state, term)
        if isinstance(term, TRet):
            return self._exec_ret(state, term)
        if isinstance(term, THalt):
            code = state.eval_expr(term.code) if term.code is not None else ops.bv(0, 32)
            return [self._halt(state, code)]
        raise RuntimeError(f"block {frame.block} in {frame.func} lacks a terminator")

    def _lookup_compiled(self, func: str, label: str, block):
        """Compiled prefix for a hot block, or None (cold / uncompilable)."""
        key = (func, label)
        compiled = self._compiled.get(key)
        if compiled is None and key not in self._compiled:
            pick_counts = getattr(self.strategy, "pick_counts", None)
            if pick_counts is not None:
                heat = pick_counts.get(key, 0)
            else:
                heat = self._block_heat.get(key, 0) + 1
                self._block_heat[key] = heat
            if heat < self.config.lowering_threshold:
                return None
            compiled = compile_block(block)
            self._compiled[key] = compiled
            if compiled is not None:
                self.stats.blocks_compiled += 1
        return compiled

    def _after_move(self, state: SymState) -> list[SymState]:
        self._record_history(state)
        return [state]

    def _record_history(self, state: SymState) -> None:
        """Append the state's current (location, hash) to its DSM trace.

        Called while the state is *off* the worklist (mid-step), so the
        strategy's hash index picks the new entry up at re-add time.
        """
        if self.config.merging != "dynamic":
            return
        entry = (state.loc_key(), self.similarity.state_hash(state))
        history = state.history + (entry,)
        if len(history) > self.config.dsm_delta:
            history = history[-self.config.dsm_delta :]
        state.history = history

    # -- instruction semantics -------------------------------------------------------------------

    def _resolve_memref(self, state: SymState, ref: MemRef) -> tuple[ArrayBinding, Expr | None]:
        binding = state.resolve_binding(ref.array)
        row = state.eval_expr(ref.row) if ref.row is not None else None
        return binding, row

    def _check_bounds(self, state: SymState, binding: ArrayBinding, flat: Expr, line: int) -> bool:
        """Ensure the access is in bounds; report a 'bounds' error otherwise.

        Returns False when the state cannot continue (always out of bounds).
        """
        region = state.region_of(binding)
        in_bounds = ops.ult(flat, ops.bv(region.size, flat.width))
        if in_bounds.is_true():
            return True
        if in_bounds.is_false():
            self._report_error(state, "bounds", line)
            return False
        oob = self.solver.check(list(state.pc) + [ops.not_(in_bounds)])
        if oob.is_sat:
            self._report_error(
                state,
                "bounds",
                line,
                model=oob.model,
                error_pc=list(state.pc) + [ops.not_(in_bounds)],
            )
            ok = self.solver.check(list(state.pc) + [in_bounds])
            if not ok.is_sat:
                return False
            state.add_constraint(in_bounds)
            self._split_exact_pcs(state, in_bounds)
        return True

    def _exec_load(self, state: SymState, instr: ILoad) -> bool:
        binding, row = self._resolve_memref(state, instr.ref)
        index = state.eval_expr(instr.index)
        flat = state.flat_index(binding, row, index)
        if flat.is_const():
            region = state.region_of(binding)
            if not (0 <= flat.value < region.size):
                self._report_error(state, "bounds", instr.line)
                return False
            state.assign(instr.dst, region.cells[flat.value])
            return True
        if not self._check_bounds(state, binding, flat, instr.line):
            return False
        state.assign(instr.dst, state.read_cells(binding, flat))
        return True

    def _exec_store(self, state: SymState, instr: IStore) -> bool:
        binding, row = self._resolve_memref(state, instr.ref)
        index = state.eval_expr(instr.index)
        value = state.eval_expr(instr.value)
        flat = state.flat_index(binding, row, index)
        if flat.is_const():
            region = state.region_of(binding)
            if not (0 <= flat.value < region.size):
                self._report_error(state, "bounds", instr.line)
                return False
            state.regions[binding.key] = region.with_cell(flat.value, value)
            return True
        if not self._check_bounds(state, binding, flat, instr.line):
            return False
        state.write_cells(binding, flat, value)
        return True

    def _exec_assert(self, state: SymState, instr: IAssert) -> bool:
        cond = state.eval_expr(instr.cond)
        if cond.is_true():
            return True
        if cond.is_false():
            self._report_error(state, "assert", instr.line)
            return False
        violated = self.solver.check(list(state.pc) + [ops.not_(cond)])
        if violated.is_sat:
            self._report_error(
                state,
                "assert",
                instr.line,
                model=violated.model,
                error_pc=list(state.pc) + [ops.not_(cond)],
            )
            holds = self.solver.check(list(state.pc) + [cond])
            if not holds.is_sat:
                return False
            state.add_constraint(cond)
            self._split_exact_pcs(state, cond)
        return True

    def _exec_call(self, state: SymState, instr: ICall) -> None:
        callee = self.module.function(instr.func)
        store: dict[str, Expr] = {}
        arrays: dict[str, ArrayBinding] = {}
        for (pname, ptype), arg in zip(callee.params, instr.args):
            if isinstance(arg, MemRef):
                binding, row = self._resolve_memref(state, arg)
                if row is not None:
                    if binding.row is not None:
                        raise RuntimeError("row view of a row view is not supported")
                    binding = ArrayBinding(binding.key, row)
                arrays[pname] = binding
            else:
                store[pname] = state.eval_expr(arg)
        depth = len(state.frames) + 1
        frame = Frame(callee.name, callee.entry, 0, store, arrays, instr.dst, depth)
        state.frames.append(frame)
        self._alloc_local_arrays(state, callee, depth)

    def _exec_ret(self, state: SymState, term: TRet) -> list[SymState]:
        value = state.eval_expr(term.value) if term.value is not None else None
        frame = state.frames.pop()
        state.gc_frame_regions(frame.depth, frame.func)
        if not state.frames:
            return [self._halt(state, value if value is not None else ops.bv(0, 32))]
        if frame.ret_dst is not None and value is not None:
            state.assign(frame.ret_dst, value)
        return self._after_move(state)

    def _exec_branch(self, state: SymState, term: TBr) -> list[SymState]:
        cond = state.eval_expr(term.cond)
        frame = state.top
        if cond.is_true() or cond.is_false():
            frame.block = term.then_label if cond.is_true() else term.else_label
            frame.idx = 0
            return self._after_move(state)
        neg = ops.not_(cond)
        # One batch query decides both arms: on an incremental chain the
        # two probes share the path condition's persistent encoding, and a
        # provably-infeasible arm lets the other's solve be elided.
        then_res, else_res = self.solver.check_branch(state.pc, cond)
        self.stats.branch_queries += 1
        successors: list[SymState] = []
        if then_res.is_sat and else_res.is_sat:
            self.stats.forks += 1
            other = state.clone(self._fresh_sid())
            self.stats.states_created += 1
            for target_state, branch_cond, label in (
                (state, cond, term.then_label),
                (other, neg, term.else_label),
            ):
                target_state.top.block = label
                target_state.top.idx = 0
                target_state.add_constraint(branch_cond)
                self._split_exact_pcs(target_state, branch_cond)
                successors.extend(self._after_move(target_state))
        elif then_res.is_sat or else_res.is_sat:
            branch_cond = cond if then_res.is_sat else neg
            frame.block = term.then_label if then_res.is_sat else term.else_label
            frame.idx = 0
            state.add_constraint(branch_cond)
            self._split_exact_pcs(state, branch_cond)
            successors.extend(self._after_move(state))
        else:
            self.stats.states_infeasible += 1
        return successors

    def _split_exact_pcs(self, state: SymState, cond: Expr) -> None:
        """Fig. 3 instrumentation: filter constituent single-path pcs."""
        if state.exact_pcs is None:
            return
        kept = []
        for pc in state.exact_pcs:
            if self.solver.check(list(pc) + [cond]).is_sat:
                kept.append(pc + (cond,))
        state.exact_pcs = tuple(kept)

    # -- terminal states ------------------------------------------------------------------------

    def _halt(self, state: SymState, code: Expr) -> SymState:
        state.halted = True
        state.exit_code = code
        return state

    def _finalize(self, state: SymState) -> None:
        if self.config.keep_terminal_states:
            self.terminal_states.append(state)
        self.stats.states_terminated += 1
        self.stats.paths_completed += state.multiplicity
        if state.exact_pcs is not None:
            self.stats.exact_paths += len(state.exact_pcs)
            self.exact_path_samples.append((state.multiplicity, len(state.exact_pcs)))
        self.stats.max_multiplicity = max(self.stats.max_multiplicity, state.multiplicity)
        if self.config.generate_tests:
            case = make_test_case(
                self.solver,
                self.spec,
                state.pc,
                "path",
                multiplicity=state.multiplicity,
                deterministic=self.config.testgen_deterministic,
                stats_sink=self.stats,
            )
            if case is not None:
                self.tests.add(case)
                self.stats.tests_generated += 1

    def _report_error(
        self, state: SymState, kind: str, line: int, model=None, error_pc=None
    ) -> None:
        """Record an error; ``error_pc`` is the constraint set an erroneous
        input must satisfy (defaults to the state's pc for errors that are
        unconditional on this path)."""
        self.stats.errors_found += 1
        if not self.config.generate_tests:
            return
        if self.config.testgen_deterministic:
            # Re-derive the witness from the constraints alone so the test
            # content does not depend on exploration order (the ``model``
            # handed to us came from the history-carrying engine chain).
            case = make_test_case(
                self.solver,
                self.spec,
                error_pc if error_pc is not None else state.pc,
                kind,
                line=line,
                deterministic=True,
                stats_sink=self.stats,
            )
            if case is not None:
                self.tests.add(case)
        elif model is not None:
            from ..expr.canon import named_key
            from ..solver.portfolio import complete_model

            full = complete_model(model, self.spec.input_variables())
            argv = tuple(self.spec.decode(full))
            items = tuple(
                sorted((k, v) for k, v in full.items() if k.startswith(("arg", "stdin")))
            )
            pc = error_pc if error_pc is not None else list(state.pc)
            self.tests.add(TestCase(kind=kind, argv=argv, model=items, line=line,
                                    stdin=self.spec.decode_stdin(full),
                                    path_id=named_key(pc)))
        else:
            case = make_test_case(self.solver, self.spec, state.pc, kind, line=line)
            if case is not None:
                self.tests.add(case)


def _init_cells(size: int, width: int, init) -> tuple[Expr, ...]:
    cells = [ops.bv(0, width)] * size
    if init is not None:
        values = list(init)
        for i, v in enumerate(values[:size]):
            cells[i] = ops.bv(int(v), width)
    return tuple(cells)
