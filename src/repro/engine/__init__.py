"""Symbolic execution engine: Algorithm 1, state merging, similarity, tests."""

from .executor import Engine, EngineConfig
from .merge import merge_states, split_guard
from .similarity import (
    LiveVarSimilarity,
    MergeAlways,
    MergeNever,
    QceFullSimilarity,
    QceSimilarity,
)
from .state import ArrayBinding, Frame, Region, SymState
from .stats import CoverageTracker, EngineStats
from .testgen import TestCase, TestSuite, make_test_case

__all__ = [
    "ArrayBinding",
    "CoverageTracker",
    "Engine",
    "EngineConfig",
    "EngineStats",
    "Frame",
    "LiveVarSimilarity",
    "MergeAlways",
    "MergeNever",
    "QceFullSimilarity",
    "QceSimilarity",
    "Region",
    "SymState",
    "TestCase",
    "TestSuite",
    "make_test_case",
    "merge_states",
    "split_guard",
]
