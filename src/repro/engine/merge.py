"""State merging (Algorithm 1, lines 17–22).

Merging two states at the same full-stack location produces a single state
whose path condition is the *disjunction* of the inputs' (with the common
prefix factored out, per §2.1) and whose stores guard each differing value
with an ``ite`` on the first state's path-suffix.

Dead scalars (per liveness) are excluded: a variable that is never read
again may keep either side's value, so it neither forces an ``ite`` nor
needs to participate in similarity checks.  This is sound and mirrors what
the KLEE prototype gets from merging at the LLVM register level after
optimization passes killed dead registers.
"""

from __future__ import annotations

from ..expr import ops
from ..expr.nodes import Expr
from .state import Region, SymState


def split_guard(pc1: tuple[Expr, ...], pc2: tuple[Expr, ...]) -> tuple[int, Expr, Expr]:
    """Common-prefix factoring of two path conditions.

    Returns ``(prefix_len, suffix1, suffix2)`` where each suffix is the
    conjunction of the constraints beyond the shared prefix.
    """
    prefix_len = 0
    for a, b in zip(pc1, pc2):
        if a is not b:
            break
        prefix_len += 1
    suffix1 = ops.and_all(pc1[prefix_len:])
    suffix2 = ops.and_all(pc2[prefix_len:])
    return prefix_len, suffix1, suffix2


def merge_values(guard: Expr, v1: Expr, v2: Expr) -> Expr:
    return v1 if v1 is v2 else ops.ite(guard, v1, v2)


def merge_states(
    s1: SymState,
    s2: SymState,
    new_sid: int,
    live_scalars=None,
) -> SymState | None:
    """Merge ``s1`` into ``s2`` (both at the same location); None if shapes differ.

    ``live_scalars(frame_index, state) -> frozenset | None`` optionally
    restricts which scalars are merged per frame (None = all).  The caller
    is responsible for having checked the similarity relation; this
    function enforces only *structural* compatibility.
    """
    if s1.loc_key() != s2.loc_key():
        return None
    if s1.shape_fingerprint() != s2.shape_fingerprint():
        return None
    _, suffix1, suffix2 = split_guard(s1.pc, s2.pc)
    guard = suffix1

    merged = s2.clone(new_sid)
    prefix_len, _, _ = split_guard(s1.pc, s2.pc)
    merged.pc = s1.pc[:prefix_len] + (ops.or_(suffix1, suffix2),)
    # Drop a trailing `true` (both suffixes empty => identical pcs).
    if merged.pc and merged.pc[-1].is_true():
        merged.pc = merged.pc[:-1]

    for i, (f1, f2, fm) in enumerate(zip(s1.frames, s2.frames, merged.frames)):
        live = live_scalars(i, s2) if live_scalars is not None else None
        for name, v2 in f2.store.items():
            v1 = f1.store[name]
            if live is not None and name not in live:
                # Dead at the merge point: either value is observationally
                # equivalent; keep s2's (already in the clone).
                continue
            fm.store[name] = merge_values(guard, v1, v2)

    for name, v2 in s2.globals_store.items():
        v1 = s1.globals_store[name]
        merged.globals_store[name] = merge_values(guard, v1, v2)

    for key, r2 in s2.regions.items():
        r1 = s1.regions[key]
        if r1 is r2 or r1.cells == r2.cells:
            continue
        cells = tuple(
            merge_values(guard, c1, c2) for c1, c2 in zip(r1.cells, r2.cells)
        )
        merged.regions[key] = Region(cells, r2.cols, r2.width)

    merged.output = tuple(
        merge_values(guard, o1, o2) for o1, o2 in zip(s1.output, s2.output)
    )
    merged.multiplicity = s1.multiplicity + s2.multiplicity
    if s1.exact_pcs is not None and s2.exact_pcs is not None:
        merged.exact_pcs = s1.exact_pcs + s2.exact_pcs
    merged.generation = max(s1.generation, s2.generation) + 1
    return merged
