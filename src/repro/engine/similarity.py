"""Similarity relations (the ``~`` of Algorithm 1).

* :class:`MergeNever` — plain search-based symbolic execution.
* :class:`MergeAlways` — merge whenever shapes match (static-merging-style).
* :class:`QceSimilarity` — the paper's Eq. 1: states merge only if every
  *hot* variable is equal in both states or already symbolic in one.
* :class:`LiveVarSimilarity` — the Boonstoppel-et-al.-inspired baseline:
  merge only when all *live* values are identical (differences confined to
  dead variables), i.e. the pruning special case discussed in §6.

Each relation also provides the state hash of §4.3 used by dynamic state
merging: ``h(v)`` maps symbolic values to a sentinel and concrete values to
themselves, so hash equality conservatively approximates ``~``.
"""

from __future__ import annotations

from ..expr.nodes import Expr
from ..qce.qce import QceAnalysis
from .state import SymState

_SYMBOLIC = -1  # sentinel for h(v) of input-dependent values


def _h(value: Expr) -> int:
    """The paper's h(v): a unique marker for symbolic values, else the value."""
    return _SYMBOLIC if value.is_symbolic() else value.eid


def _compatible(v1: Expr, v2: Expr) -> bool:
    """Eq. 1 per-variable condition: equal, or symbolic in at least one."""
    return v1 is v2 or v1.is_symbolic() or v2.is_symbolic()


class SimilarityRelation:
    """Interface; instances are stateless w.r.t. individual states."""

    name = "abstract"

    def mergeable(self, s1: SymState, s2: SymState) -> bool:
        raise NotImplementedError

    def state_hash(self, state: SymState) -> int:
        raise NotImplementedError


class MergeNever(SimilarityRelation):
    name = "never"

    def mergeable(self, s1: SymState, s2: SymState) -> bool:
        return False

    def state_hash(self, state: SymState) -> int:
        return hash((state.sid, "never"))  # never collides on purpose


class MergeAlways(SimilarityRelation):
    name = "always"

    def mergeable(self, s1: SymState, s2: SymState) -> bool:
        return True

    def state_hash(self, state: SymState) -> int:
        return hash(state.loc_key())


class QceSimilarity(SimilarityRelation):
    """Eq. 1 instantiated with the precomputed QCE hot sets.

    ``qt_global`` sums the local Qt of every stack frame's current location
    (paper §3.2's dynamic interprocedural combination); the hot set of each
    frame is then looked up against that global total.
    """

    name = "qce"

    def __init__(self, qce: QceAnalysis):
        self.qce = qce
        self._hot_cache: dict[tuple, frozenset[str]] = {}

    def qt_global(self, state: SymState) -> float:
        return sum(self.qce.qt_local(f.func, f.block) for f in state.frames)

    def hot_set(self, func: str, block: str, qt_global: float) -> frozenset[str]:
        key = (func, block, round(qt_global, 6))
        cached = self._hot_cache.get(key)
        if cached is None:
            cached = self.qce.hot_variables(func, block, qt_global)
            self._hot_cache[key] = cached
        return cached

    def _frame_hot_sets(self, state: SymState) -> list[frozenset[str]]:
        qt_g = self.qt_global(state)
        return [self.hot_set(f.func, f.block, qt_g) for f in state.frames]

    def mergeable(self, s1: SymState, s2: SymState) -> bool:
        for f1, f2, hot in zip(s1.frames, s2.frames, self._frame_hot_sets(s2)):
            for var in hot:
                v2 = f2.store.get(var)
                if v2 is not None:
                    v1 = f1.store.get(var)
                    if v1 is None or not _compatible(v1, v2):
                        return False
                    continue
                if var.startswith("g$") and var in s2.globals_store:
                    if not _compatible(s1.globals_store[var], s2.globals_store[var]):
                        return False
                    continue
                binding = f2.arrays.get(var)
                if binding is None and var.startswith("g$"):
                    key = (0, "global", var)
                    r1, r2 = s1.regions.get(key), s2.regions.get(key)
                else:
                    if binding is None:
                        continue  # e.g. caller-scope name not visible here
                    r1 = s1.regions.get(binding.key)
                    r2 = s2.regions.get(binding.key)
                if r1 is None or r2 is None or r1 is r2:
                    continue
                for c1, c2 in zip(r1.cells, r2.cells):
                    if not _compatible(c1, c2):
                        return False
        return True

    def state_hash(self, state: SymState) -> int:
        qt_g = self.qt_global(state)
        # Structural mergeability must be part of the hash: two states with
        # equal hot-variable values but, say, different output lengths can
        # never merge, and treating them as "similar" would make DSM
        # fast-forward them against each other indefinitely.
        parts: list = [state.shape_fingerprint()]
        for frame, hot in zip(state.frames, self._frame_hot_sets(state)):
            frame_part: list = []
            for var in sorted(hot):
                value = frame.store.get(var)
                if value is not None:
                    frame_part.append((var, _h(value)))
                    continue
                if var.startswith("g$") and var in state.globals_store:
                    frame_part.append((var, _h(state.globals_store[var])))
                    continue
                binding = frame.arrays.get(var)
                key = binding.key if binding is not None else (0, "global", var)
                region = state.regions.get(key)
                if region is not None:
                    frame_part.append((var, tuple(_h(c) for c in region.cells)))
            parts.append(tuple(frame_part))
        return hash(tuple(parts))


class QceFullSimilarity(QceSimilarity):
    """The *full* QCE criterion of §3.3, Eq. 7 — including ite costs.

    The paper's prototype drops the Qite term; §5.4 observes cases where
    "our QCE prototype can be improved by including the estimation of ite
    expressions introduced by state merging".  This class implements that
    improvement:

        (zeta - 1) * max_{v differing, symbolic} Qite(l, v)
                   + max_{v differing, concrete} Qadd(l, v)  <  alpha * Qt

    with Qite(l, v) = Qadd(l, v) = q(l, c_v) (both are instantiations of
    the same per-variable query count, §3.3).  ``zeta`` > 1 is the assumed
    cost multiplier of a query containing fresh ite expressions
    (Simplifying Assumption 1).
    """

    name = "qce-full"

    def __init__(self, qce: QceAnalysis, zeta: float = 2.0):
        super().__init__(qce)
        if zeta < 1.0:
            raise ValueError("zeta must be >= 1 (ite queries cannot be cheaper)")
        self.zeta = zeta

    def _differing_values(self, s1: SymState, s2: SymState):
        """Yield (frame_index, var, v1, v2) for every differing pair."""
        for i, (f1, f2) in enumerate(zip(s1.frames, s2.frames)):
            for var, v2 in f2.store.items():
                v1 = f1.store.get(var)
                if v1 is not None and v1 is not v2:
                    yield i, var, v1, v2
            for var, binding in f2.arrays.items():
                r1 = s1.regions.get(binding.key)
                r2 = s2.regions.get(binding.key)
                if r1 is None or r2 is None or r1 is r2:
                    continue
                for c1, c2 in zip(r1.cells, r2.cells):
                    if c1 is not c2:
                        yield i, var, c1, c2
                        break  # array participates once, coarsely
        for var, v2 in s2.globals_store.items():
            v1 = s1.globals_store.get(var)
            if v1 is not None and v1 is not v2:
                yield 0, var, v1, v2

    def mergeable(self, s1: SymState, s2: SymState) -> bool:
        qt_g = self.qt_global(s2)
        threshold = self.qce.params.alpha * qt_g
        max_qite = 0.0
        max_qadd = 0.0
        for frame_index, var, v1, v2 in self._differing_values(s1, s2):
            frame = s2.frames[frame_index]
            qadd = self.qce.qadd_local(frame.func, frame.block, var)
            if v1.is_symbolic() or v2.is_symbolic():
                max_qite = max(max_qite, qadd)  # s1[v] !=s s2[v]
            else:
                max_qadd = max(max_qadd, qadd)  # s1[v] !=c s2[v]
        return (self.zeta - 1.0) * max_qite + max_qadd < threshold


class LiveVarSimilarity(SimilarityRelation):
    """Merge only when every live value is identical (baseline [3]).

    ``live_sets(state) -> list[frozenset]`` yields per-frame live scalar
    sets; the engine injects its liveness oracle at construction.
    """

    name = "live"

    def __init__(self, live_sets):
        self.live_sets = live_sets

    def mergeable(self, s1: SymState, s2: SymState) -> bool:
        for f1, f2, live in zip(s1.frames, s2.frames, self.live_sets(s2)):
            for var in live:
                v1, v2 = f1.store.get(var), f2.store.get(var)
                if v1 is not v2:
                    return False
        for key, r2 in s2.regions.items():
            r1 = s1.regions.get(key)
            if r1 is not r2 and (r1 is None or r1.cells != r2.cells):
                return False
        return s1.globals_store == s2.globals_store

    def state_hash(self, state: SymState) -> int:
        parts: list = [state.shape_fingerprint()]
        for frame, live in zip(state.frames, self.live_sets(state)):
            parts.append(tuple((v, frame.store[v].eid) for v in sorted(live) if v in frame.store))
        for key in sorted(state.regions):
            parts.append(tuple(c.eid for c in state.regions[key].cells))
        return hash(tuple(parts))
