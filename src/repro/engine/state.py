"""Symbolic execution states.

A state is the paper's ``(l, pc, s)`` triple, generalized to a call stack:
every frame carries its own symbolic store; memory lives in *regions* keyed
by ``(depth, function, variable)`` so that two states with identical stack
shapes address identical region keys — which is what makes merging possible
without renaming.  Regions hold immutable cell tuples; writes replace the
region, so cloning a state is a few shallow dict copies.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

from ..expr import ops
from ..expr.nodes import Expr
from ..expr.serialize import decode_exprs, encode_exprs
from ..expr.subst import substitute

RegionKey = tuple

GLOBAL_DEPTH = 0


@dataclass(frozen=True)
class Region:
    """An immutable array region: flat cells + 2-D geometry if applicable."""

    cells: tuple[Expr, ...]
    cols: int | None
    width: int

    @property
    def size(self) -> int:
        return len(self.cells)

    def with_cell(self, index: int, value: Expr) -> "Region":
        cells = list(self.cells)
        cells[index] = value
        return Region(tuple(cells), self.cols, self.width)


@dataclass
class ArrayBinding:
    """What a frame's array name denotes: a region, optionally one row of it."""

    key: RegionKey
    row: Expr | None = None  # row index expression for 2-D row views

    def binding_fingerprint(self) -> tuple:
        return (self.key, self.row.eid if self.row is not None else None)


class Frame:
    """One activation record."""

    __slots__ = ("func", "block", "idx", "store", "arrays", "ret_dst", "depth")

    def __init__(
        self,
        func: str,
        block: str,
        idx: int,
        store: dict[str, Expr],
        arrays: dict[str, ArrayBinding],
        ret_dst: str | None,
        depth: int,
    ):
        self.func = func
        self.block = block
        self.idx = idx
        self.store = store
        self.arrays = arrays
        self.ret_dst = ret_dst
        self.depth = depth

    def clone(self) -> "Frame":
        return Frame(
            self.func,
            self.block,
            self.idx,
            dict(self.store),
            dict(self.arrays),
            self.ret_dst,
            self.depth,
        )

    def loc(self) -> tuple[str, str, int]:
        return (self.func, self.block, self.idx)


class SymState:
    """A symbolic execution state (worklist element of Algorithm 1)."""

    __slots__ = (
        "sid",
        "frames",
        "globals_store",
        "regions",
        "pc",
        "output",
        "multiplicity",
        "steps",
        "history",
        "exact_pcs",
        "halted",
        "exit_code",
        "error",
        "generation",
    )

    def __init__(self, sid: int):
        self.sid = sid
        self.frames: list[Frame] = []
        self.globals_store: dict[str, Expr] = {}
        self.regions: dict[RegionKey, Region] = {}
        self.pc: tuple[Expr, ...] = ()
        self.output: tuple[Expr, ...] = ()
        self.multiplicity: int = 1
        self.steps: int = 0
        # DSM predecessor trace: most recent (loc_key, similarity_hash) pairs.
        self.history: tuple[tuple[tuple, int], ...] = ()
        # Exact single-path constituents (Fig. 3 instrumentation), or None.
        self.exact_pcs: tuple[tuple[Expr, ...], ...] | None = None
        self.halted = False
        self.exit_code: Expr | None = None
        self.error: str | None = None
        self.generation = 0

    # -- structure -----------------------------------------------------------

    @property
    def top(self) -> Frame:
        return self.frames[-1]

    def loc_key(self) -> tuple:
        """Full-stack location identity; merge candidates must agree on it."""
        return tuple(
            (f.func, f.block, f.idx, f.ret_dst) for f in self.frames
        )

    def shape_fingerprint(self) -> tuple:
        """Location + store keys + array bindings + region geometry.

        Two states with equal fingerprints are structurally mergeable (the
        value-level similarity check is separate).
        """
        frames_part = tuple(
            (
                f.func,
                f.block,
                f.idx,
                f.ret_dst,
                tuple(sorted(f.store)),
                tuple(sorted((n, b.binding_fingerprint()) for n, b in f.arrays.items())),
            )
            for f in self.frames
        )
        regions_part = tuple(
            sorted((k, r.size, r.cols, r.width) for k, r in self.regions.items())
        )
        return (frames_part, regions_part, len(self.output))

    def clone(self, new_sid: int) -> "SymState":
        other = SymState(new_sid)
        other.frames = [f.clone() for f in self.frames]
        other.globals_store = dict(self.globals_store)
        other.regions = dict(self.regions)
        other.pc = self.pc
        other.output = self.output
        other.multiplicity = self.multiplicity
        other.steps = self.steps
        other.history = self.history
        other.exact_pcs = self.exact_pcs
        other.halted = self.halted
        other.exit_code = self.exit_code
        other.error = self.error
        other.generation = self.generation
        return other

    # -- variable access -------------------------------------------------------

    def lookup(self, name: str) -> Expr:
        if name.startswith("g$"):
            value = self.globals_store.get(name)
        else:
            value = self.top.store.get(name)
        if value is None:
            raise KeyError(f"unbound variable {name!r} in state {self.sid}")
        return value

    def assign(self, name: str, value: Expr) -> None:
        if name.startswith("g$"):
            self.globals_store[name] = value
        else:
            self.top.store[name] = value

    def eval_expr(self, expr: Expr) -> Expr:
        """Evaluate an IR expression to a symbolic value in the current frame."""
        names = expr.variables
        if not names:
            return expr
        mapping = {name: self.lookup(name) for name in names}
        return substitute(expr, mapping)

    # -- path condition ----------------------------------------------------------

    def add_constraint(self, cond: Expr) -> None:
        if not cond.is_true():
            self.pc = self.pc + (cond,)

    def pc_expr(self) -> Expr:
        return ops.and_all(self.pc)

    # -- memory -----------------------------------------------------------------

    def region_of(self, binding: ArrayBinding) -> Region:
        region = self.regions.get(binding.key)
        if region is None:
            raise KeyError(f"dangling region {binding.key} in state {self.sid}")
        return region

    def resolve_binding(self, array_name: str) -> ArrayBinding:
        if array_name.startswith("g$"):
            return ArrayBinding((GLOBAL_DEPTH, "global", array_name))
        binding = self.top.arrays.get(array_name)
        if binding is None:
            raise KeyError(f"unknown array {array_name!r} in {self.top.func}")
        return binding

    def flat_index(self, binding: ArrayBinding, row: Expr | None, index: Expr) -> Expr:
        """Flat cell index of ``[row][index]`` through a binding.

        The binding's own row view composes with the instruction-level row
        (bindings created from ``argv[i]`` have a row; a further ``[j]``
        indexes within that row).
        """
        region = self.region_of(binding)
        effective_row = row if row is not None else binding.row
        if effective_row is None:
            return index
        if region.cols is None:
            raise KeyError(f"region {binding.key} is not 2-D")
        cols = ops.bv(region.cols, 32)
        return ops.add(ops.mul(effective_row, cols), index)

    def read_cells(self, binding: ArrayBinding, flat: Expr) -> Expr:
        """Read a cell; symbolic indices produce an ite chain over all cells."""
        region = self.region_of(binding)
        if flat.is_const():
            i = flat.value
            if 0 <= i < region.size:
                return region.cells[i]
            raise IndexError(f"constant index {i} out of bounds for {binding.key}")
        value = region.cells[-1]
        for i in range(region.size - 2, -1, -1):
            value = ops.ite(ops.eq(flat, ops.bv(i, flat.width)), region.cells[i], value)
        return value

    def write_cells(self, binding: ArrayBinding, flat: Expr, value: Expr) -> None:
        region = self.region_of(binding)
        if flat.is_const():
            i = flat.value
            if not (0 <= i < region.size):
                raise IndexError(f"constant index {i} out of bounds for {binding.key}")
            self.regions[binding.key] = region.with_cell(i, value)
            return
        cells = [
            ops.ite(ops.eq(flat, ops.bv(i, flat.width)), value, cell)
            for i, cell in enumerate(region.cells)
        ]
        self.regions[binding.key] = Region(tuple(cells), region.cols, region.width)

    def gc_frame_regions(self, depth: int, func: str) -> None:
        """Drop regions owned by a popped frame."""
        dead = [k for k in self.regions if k[0] == depth and k[1] == func]
        for k in dead:
            del self.regions[k]

    # -- snapshot wire format ----------------------------------------------------
    #
    # A snapshot is a restartable *path prefix*: everything another process
    # needs to resume exploring this state's subtree — frames, stores,
    # regions, path condition, output — flattened to plain picklable data
    # through the expression codec (:mod:`repro.expr.serialize`).  Process-
    # local fields are deliberately dropped: ``sid`` is reassigned by the
    # restoring engine and the DSM ``history`` is cleared, because its
    # similarity hashes embed interned-expression ids that mean nothing in
    # another process (merging restarts cleanly within the new partition).

    SNAPSHOT_VERSION = 1

    def snapshot(self) -> bytes:
        """Serialize into bytes that :meth:`from_snapshot` can resume from."""
        roots: list[Expr] = []

        def ref(expr: Expr) -> int:
            roots.append(expr)
            return len(roots) - 1

        frames = [
            (
                f.func,
                f.block,
                f.idx,
                f.ret_dst,
                f.depth,
                {name: ref(v) for name, v in f.store.items()},
                {
                    name: (b.key, ref(b.row) if b.row is not None else None)
                    for name, b in f.arrays.items()
                },
            )
            for f in self.frames
        ]
        regions = [
            (key, r.cols, r.width, tuple(ref(c) for c in r.cells))
            for key, r in self.regions.items()
        ]
        payload = {
            "version": self.SNAPSHOT_VERSION,
            "frames": frames,
            "globals": {name: ref(v) for name, v in self.globals_store.items()},
            "regions": regions,
            "pc": tuple(ref(c) for c in self.pc),
            "output": tuple(ref(o) for o in self.output),
            "exact_pcs": None
            if self.exact_pcs is None
            else tuple(tuple(ref(c) for c in pc) for pc in self.exact_pcs),
            "multiplicity": self.multiplicity,
            "steps": self.steps,
            "halted": self.halted,
            "exit_code": ref(self.exit_code) if self.exit_code is not None else None,
            "error": self.error,
            "generation": self.generation,
        }
        nodes, root_indices = encode_exprs(roots)
        payload["nodes"] = nodes
        payload["roots"] = root_indices
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_snapshot(cls, data: bytes, sid: int) -> "SymState":
        """Rebuild a state from :meth:`snapshot` bytes under a fresh sid."""
        payload = pickle.loads(data)
        if payload["version"] != cls.SNAPSHOT_VERSION:
            raise ValueError(f"unsupported snapshot version {payload['version']}")
        decoded = decode_exprs(payload["nodes"])
        root_indices = payload["roots"]

        def deref(i: int) -> Expr:
            return decoded[root_indices[i]]

        state = cls(sid)
        state.frames = [
            Frame(
                func,
                block,
                idx,
                {name: deref(i) for name, i in store.items()},
                {
                    name: ArrayBinding(
                        tuple(key), deref(row_i) if row_i is not None else None
                    )
                    for name, (key, row_i) in arrays.items()
                },
                ret_dst,
                depth,
            )
            for func, block, idx, ret_dst, depth, store, arrays in payload["frames"]
        ]
        state.globals_store = {name: deref(i) for name, i in payload["globals"].items()}
        state.regions = {
            tuple(key): Region(tuple(deref(i) for i in cells), cols, width)
            for key, cols, width, cells in payload["regions"]
        }
        state.pc = tuple(deref(i) for i in payload["pc"])
        state.output = tuple(deref(i) for i in payload["output"])
        if payload["exact_pcs"] is not None:
            state.exact_pcs = tuple(
                tuple(deref(i) for i in pc) for pc in payload["exact_pcs"]
            )
        state.multiplicity = payload["multiplicity"]
        state.steps = payload["steps"]
        state.halted = payload["halted"]
        if payload["exit_code"] is not None:
            state.exit_code = deref(payload["exit_code"])
        state.error = payload["error"]
        state.generation = payload["generation"]
        return state

    def __repr__(self) -> str:
        loc = ",".join(f"{f.func}:{f.block}:{f.idx}" for f in self.frames) or "<done>"
        return f"SymState(#{self.sid} at {loc}, |pc|={len(self.pc)}, m={self.multiplicity})"
