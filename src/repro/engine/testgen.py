"""Test-case generation from terminal states (the output of Algorithm 1).

Every completed path (and every error) yields a concrete input assignment
obtained from the solver model of its path condition.  Test cases can be
replayed on the concrete interpreter to validate the engine end to end.

Determinism under partitioning: the engine's long-lived solver chain gives
*order-dependent* models — its caches do subset-UNSAT and model-reuse
lookups and its CDCL cores carry VSIDS activity, so the model for a pc
depends on every query that came before it.  :func:`deterministic_model`
instead seeds a history-free solve from the path prefix alone, making the
generated test a pure function of the pc — which is what lets a 1-worker
run and an N-worker partitioned run emit the *same* test set regardless of
exploration order (see :mod:`repro.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..env.argv import ArgvSpec
from ..expr.canon import named_key
from ..solver.portfolio import SolverChain, complete_model


@dataclass(frozen=True)
class TestCase:
    """A generated test input.

    kind: 'path' for a normally completed path, 'assert' for an assertion
    failure, 'bounds' for an out-of-bounds access.
    """

    __test__ = False  # keep pytest from collecting this as a test class

    kind: str
    argv: tuple[bytes, ...]
    model: tuple[tuple[str, int], ...]
    exit_code: int | None = None
    line: int | None = None
    multiplicity: int = 1
    stdin: bytes = b""
    # α-canonical key of the path condition that produced this test (see
    # repro.expr.canon): a stable cross-process path-prefix identity, used
    # by the persistent test corpus to deduplicate across runs.
    path_id: str = ""

    def model_dict(self) -> dict[str, int]:
        return dict(self.model)


@dataclass
class TestSuite:
    __test__ = False  # not a pytest class

    spec: ArgvSpec
    cases: list[TestCase] = field(default_factory=list)

    def add(self, case: TestCase) -> None:
        self.cases.append(case)

    def paths(self) -> list[TestCase]:
        return [c for c in self.cases if c.kind == "path"]

    def errors(self) -> list[TestCase]:
        return [c for c in self.cases if c.kind != "path"]


def deterministic_model(pc, stats_sink=None) -> dict[str, int] | None:
    """Solve ``pc`` from scratch with a history-free chain.

    No cache, no persistent blasters, no carried-over activity: the answer
    (and in particular the *model*) depends only on the constraint set, so
    any process solving the same pc decodes the same test input.

    ``stats_sink`` (an :class:`~repro.engine.stats.EngineStats`) receives
    the extra solver work (``testgen_queries``/``testgen_cost_units``) —
    it is not part of the engine chain's own balanced ledger.
    """
    chain = SolverChain(use_cache=False)
    result = chain.check(list(pc))
    if stats_sink is not None:
        stats_sink.testgen_queries += chain.stats.queries
        stats_sink.testgen_cost_units += chain.stats.cost_units
    return result.model if result.is_sat else None


def make_test_case(
    solver: SolverChain,
    spec: ArgvSpec,
    pc,
    kind: str,
    exit_code: int | None = None,
    line: int | None = None,
    multiplicity: int = 1,
    deterministic: bool = False,
    stats_sink=None,
) -> TestCase | None:
    """Solve the path condition and decode a concrete argv; None if UNSAT."""
    if deterministic:
        model = deterministic_model(pc, stats_sink=stats_sink)
    else:
        model = solver.get_model(list(pc))
    if model is None:
        return None
    full = complete_model(model, spec.input_variables())
    argv = tuple(spec.decode(full))
    items = tuple(
        sorted((k, v) for k, v in full.items() if k.startswith(("arg", "stdin")))
    )
    return TestCase(
        kind=kind,
        argv=argv,
        model=items,
        exit_code=exit_code,
        line=line,
        multiplicity=multiplicity,
        stdin=spec.decode_stdin(full),
        path_id=named_key(list(pc)),
    )
