"""Execution statistics for experiments and regression tests."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EngineStats:
    """Counters the experiment harness reads after a run.

    ``paths_completed`` counts terminal states weighted by multiplicity —
    the paper's estimated path count.  ``exact_paths`` is only populated
    when exact-path tracking (Fig. 3 instrumentation) is enabled.
    """

    blocks_executed: int = 0
    instructions_executed: int = 0
    # Lowering tier (repro.lang.compile): blocks whose straight-line prefix
    # was compiled, instructions retired by compiled code (a subset of
    # instructions_executed), and compiled runs that bailed back to the
    # interpreter before finishing their prefix.
    blocks_compiled: int = 0
    compiled_steps: int = 0
    compiled_bailouts: int = 0
    forks: int = 0
    branch_queries: int = 0
    merges: int = 0
    dsm_fastforward_picks: int = 0
    dsm_fastforward_states: int = 0
    dsm_ff_merges: int = 0
    states_created: int = 1
    states_terminated: int = 0
    states_infeasible: int = 0
    paths_completed: int = 0
    exact_paths: int = 0
    max_multiplicity: int = 0
    max_worklist: int = 0
    errors_found: int = 0
    tests_generated: int = 0
    # Work done by deterministic test generation's history-free solves
    # (testgen_deterministic).  Kept separate from the solver_* mirrors:
    # those reflect the engine's own chain, whose ledger must balance on
    # its own; these count the extra per-path re-solves.
    testgen_queries: int = 0
    testgen_cost_units: int = 0
    wall_time: float = 0.0
    # CPU seconds consumed by this engine's process while exploring.
    # Unlike wall_time this is immune to timesharing, which makes it the
    # per-worker quantity the parallel-scaling figure's critical-path
    # speedup is computed from (meaningful even on a single-core host).
    cpu_time: float = 0.0
    timed_out: bool = False
    # Mirrors of the solver's incremental-tier counters, copied at the end
    # of a run so one EngineStats snapshot carries the whole story (the
    # experiment harness and figures read snapshots, not the chain).
    solver_assumption_probes: int = 0
    solver_incremental_reuses: int = 0
    solver_clauses_retained: int = 0
    solver_clauses_forgotten: int = 0
    # Cache/store effectiveness mirrors (query-cache tiers and the
    # persistent repro.store tier) — previously invisible outside the chain.
    solver_cache_hits: int = 0
    solver_cache_misses: int = 0
    solver_store_hits: int = 0
    solver_store_misses: int = 0
    solver_store_inserts: int = 0
    solver_unsat_cores: int = 0
    # Pre-solve tier mirrors (repro.solver.presolve): queries answered by
    # the abstract domains, boundary rewrites, and incremental environment
    # reuses.  ``solver_fastpath_hits`` equals hits_sat + hits_unsat.
    solver_fastpath_hits: int = 0
    solver_presolve_hits_sat: int = 0
    solver_presolve_hits_unsat: int = 0
    solver_presolve_rewrites: int = 0
    solver_presolve_env_reuses: int = 0
    # Warm-start seeding volume (0 on cold runs / without a store).
    warm_models_seeded: int = 0
    warm_cores_seeded: int = 0
    # Scheduler subsystem (repro.sched): heap picks served by prioritized
    # strategies, lazy rescores the heap absorbed, and — on parallel runs
    # — the observed worker imbalance (max/mean of per-worker path work;
    # 1.0 = perfectly level; feeds next run's adaptive partition_factor).
    sched_picks: int = 0
    sched_rescores: int = 0
    sched_imbalance: float = 0.0

    # Fields that do not merge by addition: maxima stay maxima across
    # workers, ``timed_out`` is an any-of, and these are handled explicitly
    # in :meth:`merge`.
    _MAX_FIELDS = ("max_multiplicity", "max_worklist", "sched_imbalance")
    _OR_FIELDS = ("timed_out",)

    def snapshot(self) -> dict[str, float]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Fold another engine's counters into this one.

        The merge law the parallel coordinator's ledger relies on:
        event counters (and ``wall_time``, which becomes aggregate CPU
        seconds) add component-wise; high-water marks take the max;
        ``timed_out`` is true if any participant tripped a budget.
        Addition-merged fields therefore satisfy the ledger invariant
        ``merged.f == sum(worker.f for worker in workers)`` exactly, and
        ``merge`` is associative and commutative over those fields.
        """
        for name in self.__dataclass_fields__:
            if name in self._MAX_FIELDS:
                setattr(self, name, max(getattr(self, name), getattr(other, name)))
            elif name in self._OR_FIELDS:
                setattr(self, name, getattr(self, name) or getattr(other, name))
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    @classmethod
    def merged(cls, parts) -> "EngineStats":
        """Merge an iterable of stats into a fresh all-zero ledger."""
        total = cls(states_created=0)
        for part in parts:
            total.merge(part)
        return total


@dataclass
class CoverageTracker:
    """Covered (function, block) pairs plus statement accounting."""

    covered: set[tuple[str, str]] = field(default_factory=set)
    statement_totals: dict[tuple[str, str], int] = field(default_factory=dict)

    def register_module(self, module) -> None:
        for fname, fn in module.functions.items():
            for label, block in fn.blocks.items():
                # A block's "statements" = instructions + terminator.
                self.statement_totals[(fname, label)] = len(block.instrs) + 1

    def touch(self, func: str, block: str) -> None:
        self.covered.add((func, block))

    @property
    def blocks_covered(self) -> int:
        return len(self.covered)

    @property
    def statements_covered(self) -> int:
        return sum(self.statement_totals.get(key, 1) for key in self.covered)

    @property
    def statements_total(self) -> int:
        return sum(self.statement_totals.values())

    def statement_coverage(self) -> float:
        total = self.statements_total
        return self.statements_covered / total if total else 0.0
