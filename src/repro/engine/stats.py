"""Execution statistics for experiments and regression tests."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EngineStats:
    """Counters the experiment harness reads after a run.

    ``paths_completed`` counts terminal states weighted by multiplicity —
    the paper's estimated path count.  ``exact_paths`` is only populated
    when exact-path tracking (Fig. 3 instrumentation) is enabled.
    """

    blocks_executed: int = 0
    instructions_executed: int = 0
    forks: int = 0
    branch_queries: int = 0
    merges: int = 0
    dsm_fastforward_picks: int = 0
    dsm_fastforward_states: int = 0
    dsm_ff_merges: int = 0
    states_created: int = 1
    states_terminated: int = 0
    states_infeasible: int = 0
    paths_completed: int = 0
    exact_paths: int = 0
    max_multiplicity: int = 0
    max_worklist: int = 0
    errors_found: int = 0
    tests_generated: int = 0
    wall_time: float = 0.0
    timed_out: bool = False
    # Mirrors of the solver's incremental-tier counters, copied at the end
    # of a run so one EngineStats snapshot carries the whole story (the
    # experiment harness and figures read snapshots, not the chain).
    solver_assumption_probes: int = 0
    solver_incremental_reuses: int = 0
    solver_clauses_retained: int = 0

    def snapshot(self) -> dict[str, float]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


@dataclass
class CoverageTracker:
    """Covered (function, block) pairs plus statement accounting."""

    covered: set[tuple[str, str]] = field(default_factory=set)
    statement_totals: dict[tuple[str, str], int] = field(default_factory=dict)

    def register_module(self, module) -> None:
        for fname, fn in module.functions.items():
            for label, block in fn.blocks.items():
                # A block's "statements" = instructions + terminator.
                self.statement_totals[(fname, label)] = len(block.instrs) + 1

    def touch(self, func: str, block: str) -> None:
        self.covered.add((func, block))

    @property
    def blocks_covered(self) -> int:
        return len(self.covered)

    @property
    def statements_covered(self) -> int:
        return sum(self.statement_totals.get(key, 1) for key in self.covered)

    @property
    def statements_total(self) -> int:
        return sum(self.statement_totals.values())

    def statement_coverage(self) -> float:
        total = self.statements_total
        return self.statements_covered / total if total else 0.0
